"""The DX86 interpreter.

Fetch goes through the enclave page table (execute permission), data
accesses go through load/store permission checks, and an optional AEX
schedule interrupts execution — dumping the register file into the SSA
exactly like the hardware the HyperRace instrumentation (P6) relies on.

Decoded instructions are cached per address; any store into the watched
code range bumps ``AddressSpace.code_version`` and flushes the cache, so
self-modifying code (what P4 forbids) behaves architecturally.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import CpuFault, PolicyViolation
from ..isa.encoding import decode_instruction
from ..isa.instructions import Op
from ..sgx.memory import AddressSpace
from .costmodel import CostModel
from .interrupts import AexSchedule

_U64 = (1 << 64) - 1
_SIGN = 1 << 63

RDI_ARG, RSI_ARG, RDX_ARG, RCX_ARG = 7, 6, 2, 1  # SVC argument registers


def to_signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN else value


@dataclass
class ExecResult:
    """Outcome of a completed (halted) execution."""

    steps: int
    cycles: float
    rip: int
    aex_events: int
    return_value: int


class CPU:
    """One hardware thread executing inside the enclave."""

    def __init__(self, space: AddressSpace, entry: int,
                 cost_model: CostModel = None,
                 aex_schedule: AexSchedule = None,
                 svc_handler=None,
                 initial_rsp: int = 0,
                 ssa_addr: int = 0,
                 hot_range=(0, 0)):
        self.space = space
        self.regs = [0] * 16
        self.rip = entry
        self.regs[4] = initial_rsp  # RSP
        self.f_eq = False
        self.f_lt_s = False
        self.f_lt_u = False
        self.cost_model = cost_model or CostModel()
        self.aex_schedule = aex_schedule or AexSchedule.disabled()
        self.svc_handler = svc_handler
        self.ssa_addr = ssa_addr
        #: [lo, hi) of the loader's hot cells (shadow stack, marker,
        #: branch map): memory ops there cost ``hot_mem_cost``.
        self.hot_range = hot_range
        self.steps = 0
        self.cycles = 0.0
        self.aex_events = 0
        #: EPC paging-model state (see CostModel.epc_pages)
        self.epc_faults = 0
        self._epc_resident = None
        self._epc_ever = None
        if self.cost_model.epc_pages:
            from collections import OrderedDict
            self._epc_resident = OrderedDict()
            self._epc_ever = set()
        self._halted = False
        self._icache = {}
        self._icache_version = space.code_version
        self._aex_countdown = (self.aex_schedule.next_interval()
                               if self.aex_schedule.enabled else 0)

    # -- helpers -----------------------------------------------------------

    def _mem_addr(self, mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.regs[mem.base]
        if mem.index is not None:
            addr += self.regs[mem.index] * mem.scale
        return addr & _U64

    def push(self, value: int) -> None:
        rsp = (self.regs[4] - 8) & _U64
        self.regs[4] = rsp
        self.space.store_u64(rsp, value)

    def pop(self) -> int:
        rsp = self.regs[4]
        value = self.space.load_u64(rsp)
        self.regs[4] = (rsp + 8) & _U64
        return value

    def _do_aex(self) -> None:
        """Asynchronous exit: dump thread context into the SSA.

        Uses the privileged write path — hardware is not subject to page
        permissions — and clobbers whatever software (the P6 marker!)
        stored there.
        """
        if self.ssa_addr:
            frame = struct.pack("<16Q", *self.regs) + \
                struct.pack("<QQ", self.rip,
                            (self.f_eq << 0) | (self.f_lt_s << 1) |
                            (self.f_lt_u << 2))
            self.space.write_raw(self.ssa_addr, frame)
        self.aex_events += 1
        self.cycles += self.cost_model.aex_cost
        self._aex_countdown = self.aex_schedule.next_interval()

    # -- decode ------------------------------------------------------------

    def _decode(self, rip: int):
        if not self.space.in_enclave(rip):
            raise CpuFault(f"fetch outside ELRANGE at {rip:#x}")
        view = self.space.enclave_view()
        try:
            instr, length = decode_instruction(
                view, rip - self.space.enclave_base)
        except Exception as exc:
            raise CpuFault(f"undecodable at {rip:#x}: {exc}") from exc
        self.space.check_exec(rip, length)
        entry = (instr.op, instr.operands, length,
                 self.cost_model.cost_of(instr.op))
        self._icache[rip] = entry
        return entry

    @property
    def halted(self) -> bool:
        return self._halted

    # -- execution -----------------------------------------------------------

    def run(self, max_steps: int = 200_000_000,
            slice_steps: int = None) -> ExecResult:
        """Run until HLT.  Raises on faults and policy traps.

        ``slice_steps`` bounds *this call*: execution pauses (without
        error) after that many instructions so a scheduler can
        interleave threads; check :attr:`halted` to see whether the
        thread finished or merely yielded.

        The loop keeps the hottest state (registers, decoded-instruction
        cache, accumulators) in locals and writes it back around every
        escape point (SVC, AEX, fault), trading repetition for
        interpreter throughput.
        """
        regs = self.regs
        space = self.space
        load_u64 = space.load_u64
        store_u64 = space.store_u64
        load_u8 = space.load_u8
        store_u8 = space.store_u8
        aex_enabled = self.aex_schedule.enabled
        hot_lo, hot_hi = self.hot_range
        hot_cost = self.cost_model.hot_mem_cost
        epc_resident = self._epc_resident
        epc_pages = self.cost_model.epc_pages
        epc_cost = self.cost_model.epc_paging_cost

        epc_ever = self._epc_ever

        def epc_touch(address):
            nonlocal cycles
            page = address >> 12
            if page in epc_resident:
                epc_resident.move_to_end(page)
                return
            if len(epc_resident) >= epc_pages:
                epc_resident.popitem(last=False)   # evict LRU (EWB)
            epc_resident[page] = None
            if page in epc_ever:
                cycles += epc_cost                 # reload (ELDU)
                self.epc_faults += 1
            else:
                epc_ever.add(page)                 # first touch: EADD'd
                                                   # at load, free here
        icache = self._icache
        steps = self.steps
        cycles = self.cycles
        rip = self.rip
        f_eq = self.f_eq
        f_lt_s = self.f_lt_s
        f_lt_u = self.f_lt_u
        self._halted = False
        slice_limit = None if slice_steps is None else steps + slice_steps

        try:
            while True:
                if steps >= max_steps:
                    raise CpuFault(f"step limit {max_steps} exceeded "
                                   f"at rip={rip:#x}")
                if slice_limit is not None and steps >= slice_limit:
                    break
                if aex_enabled:
                    self._aex_countdown -= 1
                    if self._aex_countdown <= 0:
                        self.rip = rip
                        self.cycles = cycles
                        self.f_eq, self.f_lt_s, self.f_lt_u = \
                            f_eq, f_lt_s, f_lt_u
                        self._do_aex()
                        cycles = self.cycles
                if space.code_version != self._icache_version:
                    icache.clear()
                    self._icache_version = space.code_version
                entry = icache.get(rip)
                if entry is None:
                    entry = self._decode(rip)
                op, ops, length, cost = entry
                steps += 1
                cycles += cost
                next_rip = rip + length

                if op == Op.MOV_RM:
                    mem = ops[1]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        epc_touch(addr)
                    regs[ops[0]] = load_u64(addr)
                elif op == Op.MOV_MR:
                    mem = ops[0]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        epc_touch(addr)
                    store_u64(addr, regs[ops[1]])
                elif op == Op.MOV_RR:
                    regs[ops[0]] = regs[ops[1]]
                elif op == Op.MOV_RI:
                    regs[ops[0]] = ops[1]
                elif op == Op.MOV_MI:
                    mem = ops[0]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        epc_touch(addr)
                    store_u64(addr, ops[1] & _U64)
                elif op == Op.LEA:
                    mem = ops[1]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    regs[ops[0]] = addr & _U64
                elif op == Op.LDB:
                    mem = ops[1]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        epc_touch(addr)
                    regs[ops[0]] = load_u8(addr)
                elif op == Op.STB:
                    mem = ops[0]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        epc_touch(addr)
                    store_u8(addr, regs[ops[1]])
                elif op == Op.ADD_RR:
                    regs[ops[0]] = (regs[ops[0]] + regs[ops[1]]) & _U64
                elif op == Op.ADD_RI:
                    regs[ops[0]] = (regs[ops[0]] + ops[1]) & _U64
                elif op == Op.SUB_RR:
                    regs[ops[0]] = (regs[ops[0]] - regs[ops[1]]) & _U64
                elif op == Op.SUB_RI:
                    regs[ops[0]] = (regs[ops[0]] - ops[1]) & _U64
                elif op == Op.IMUL_RR:
                    a = regs[ops[0]]
                    b = regs[ops[1]]
                    if a & _SIGN:
                        a -= 1 << 64
                    if b & _SIGN:
                        b -= 1 << 64
                    regs[ops[0]] = (a * b) & _U64
                elif op == Op.IMUL_RI:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    regs[ops[0]] = (a * ops[1]) & _U64
                elif op == Op.AND_RR:
                    regs[ops[0]] &= regs[ops[1]]
                elif op == Op.AND_RI:
                    regs[ops[0]] &= ops[1] & _U64
                elif op == Op.OR_RR:
                    regs[ops[0]] |= regs[ops[1]]
                elif op == Op.OR_RI:
                    regs[ops[0]] |= ops[1] & _U64
                elif op == Op.XOR_RR:
                    regs[ops[0]] ^= regs[ops[1]]
                elif op == Op.XOR_RI:
                    regs[ops[0]] ^= ops[1] & _U64
                elif op == Op.SHL_RR:
                    regs[ops[0]] = (regs[ops[0]]
                                    << (regs[ops[1]] & 63)) & _U64
                elif op == Op.SHL_RI:
                    regs[ops[0]] = (regs[ops[0]] << (ops[1] & 63)) & _U64
                elif op == Op.SHR_RR:
                    regs[ops[0]] >>= (regs[ops[1]] & 63)
                elif op == Op.SHR_RI:
                    regs[ops[0]] >>= (ops[1] & 63)
                elif op == Op.SAR_RR:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    regs[ops[0]] = (a >> (regs[ops[1]] & 63)) & _U64
                elif op == Op.SAR_RI:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    regs[ops[0]] = (a >> (ops[1] & 63)) & _U64
                elif op == Op.DIV_RR or op == Op.DIV_RI or \
                        op == Op.MOD_RR or op == Op.MOD_RI:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    if op == Op.DIV_RR or op == Op.MOD_RR:
                        b = regs[ops[1]]
                        if b & _SIGN:
                            b -= 1 << 64
                    else:
                        b = ops[1]
                    if b == 0:
                        raise CpuFault(f"division by zero at {rip:#x}")
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    if op == Op.DIV_RR or op == Op.DIV_RI:
                        regs[ops[0]] = q & _U64
                    else:
                        regs[ops[0]] = (a - q * b) & _U64
                elif op == Op.NEG:
                    regs[ops[0]] = (-regs[ops[0]]) & _U64
                elif op == Op.NOT:
                    regs[ops[0]] = (~regs[ops[0]]) & _U64
                elif op == Op.CMP_RR:
                    a = regs[ops[0]]
                    b = regs[ops[1]]
                    f_eq = a == b
                    f_lt_u = a < b
                    if a & _SIGN:
                        a -= 1 << 64
                    if b & _SIGN:
                        b -= 1 << 64
                    f_lt_s = a < b
                elif op == Op.CMP_RI:
                    a = regs[ops[0]]
                    b = ops[1]
                    bu = b & _U64
                    f_eq = a == bu
                    f_lt_u = a < bu
                    if a & _SIGN:
                        a -= 1 << 64
                    f_lt_s = a < b
                elif op == Op.TEST_RR:
                    masked = regs[ops[0]] & regs[ops[1]]
                    f_eq = masked == 0
                    f_lt_s = bool(masked & _SIGN)
                    f_lt_u = False
                elif op == Op.JMP:
                    next_rip += ops[0]
                elif op == Op.JMP_R:
                    next_rip = regs[ops[0]]
                elif op == Op.JE:
                    if f_eq:
                        next_rip += ops[0]
                elif op == Op.JNE:
                    if not f_eq:
                        next_rip += ops[0]
                elif op == Op.JL:
                    if f_lt_s:
                        next_rip += ops[0]
                elif op == Op.JLE:
                    if f_lt_s or f_eq:
                        next_rip += ops[0]
                elif op == Op.JG:
                    if not (f_lt_s or f_eq):
                        next_rip += ops[0]
                elif op == Op.JGE:
                    if not f_lt_s:
                        next_rip += ops[0]
                elif op == Op.JB:
                    if f_lt_u:
                        next_rip += ops[0]
                elif op == Op.JBE:
                    if f_lt_u or f_eq:
                        next_rip += ops[0]
                elif op == Op.JA:
                    if not (f_lt_u or f_eq):
                        next_rip += ops[0]
                elif op == Op.JAE:
                    if not f_lt_u:
                        next_rip += ops[0]
                elif op == Op.CALL:
                    rsp = (regs[4] - 8) & _U64
                    regs[4] = rsp
                    if epc_resident is not None:
                        epc_touch(rsp)
                    store_u64(rsp, next_rip)
                    next_rip += ops[0]
                elif op == Op.CALL_R:
                    rsp = (regs[4] - 8) & _U64
                    regs[4] = rsp
                    if epc_resident is not None:
                        epc_touch(rsp)
                    store_u64(rsp, next_rip)
                    next_rip = regs[ops[0]]
                elif op == Op.RET:
                    rsp = regs[4]
                    if epc_resident is not None:
                        epc_touch(rsp)
                    next_rip = load_u64(rsp)
                    regs[4] = (rsp + 8) & _U64
                elif op == Op.PUSH_R:
                    rsp = (regs[4] - 8) & _U64
                    regs[4] = rsp
                    if epc_resident is not None:
                        epc_touch(rsp)
                    store_u64(rsp, regs[ops[0]])
                elif op == Op.PUSH_I:
                    rsp = (regs[4] - 8) & _U64
                    regs[4] = rsp
                    if epc_resident is not None:
                        epc_touch(rsp)
                    store_u64(rsp, ops[0] & _U64)
                elif op == Op.POP_R:
                    rsp = regs[4]
                    if epc_resident is not None:
                        epc_touch(rsp)
                    regs[ops[0]] = load_u64(rsp)
                    regs[4] = (rsp + 8) & _U64
                elif op == Op.SVC:
                    if self.svc_handler is None:
                        raise CpuFault(f"SVC {ops[0]:#x} with no handler "
                                       f"at {rip:#x}")
                    # expose architectural state to the handler
                    self.rip = next_rip
                    self.steps = steps
                    self.cycles = cycles
                    self.f_eq, self.f_lt_s, self.f_lt_u = f_eq, f_lt_s, f_lt_u
                    self.svc_handler(self, ops[0])
                    next_rip = self.rip
                    cycles = self.cycles
                    f_eq, f_lt_s, f_lt_u = self.f_eq, self.f_lt_s, self.f_lt_u
                elif op == Op.NOP:
                    pass
                elif op == Op.HLT:
                    rip = next_rip
                    self._halted = True
                    break
                elif op == Op.TRAP:
                    raise PolicyViolation(ops[0], rip)
                else:  # pragma: no cover - decode guarantees known opcodes
                    raise CpuFault(f"unimplemented opcode {op:#x}")

                rip = next_rip & _U64
        finally:
            self.rip = rip
            self.steps = steps
            self.cycles = cycles
            self.f_eq, self.f_lt_s, self.f_lt_u = f_eq, f_lt_s, f_lt_u

        return ExecResult(steps, cycles, rip, self.aex_events,
                          regs[0])
