"""The DX86 interpreter.

Fetch goes through the enclave page table (execute permission), data
accesses go through load/store permission checks, and an optional AEX
schedule interrupts execution — dumping the register file into the SSA
exactly like the hardware the HyperRace instrumentation (P6) relies on.

Two execution engines share one architectural contract:

* the **single-step engine** (``executor="step"``) decodes and retires
  one instruction per loop iteration, paying a dict lookup and an AEX
  countdown tick for every retired instruction.  Decoded instructions
  are cached per address; any store into the watched code range bumps
  ``AddressSpace.code_version`` and flushes the cache, so self-modifying
  code (what P4 forbids) behaves architecturally.
* the **superblock-translating engine** (``executor="translate"``, the
  default) fuses each straight-line region into one specialized Python
  closure (see :mod:`repro.vm.translate`) and moves the per-instruction
  overheads to per-block: the AEX countdown is debited once per block,
  flags are kept lazy, and code-range stores invalidate only the
  overlapping blocks through a write hook.  Any event that would land
  *inside* a block (AEX, ``slice_steps`` boundary, step limit, an
  untranslatable leader) is replayed through the single-step engine so
  SSA dumps, faults and pauses expose the exact architectural
  mid-block state.

Both engines produce bit-identical :class:`ExecResult`\\ s — the
single-step path stays as the differential oracle for the translator.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import CpuFault, PolicyViolation
from ..isa.encoding import decode_instruction
from ..isa.instructions import Op
from ..sgx.memory import AddressSpace
from .costmodel import CostModel
from .interrupts import AexSchedule, AexTimer
from .translate import CHAIN_COLD_RUNS, CHAIN_DEPTH, COLD_RUNS, \
    BlockCache, materialize_flags, pack_flags

_U64 = (1 << 64) - 1
_SIGN = 1 << 63

RDI_ARG, RSI_ARG, RDX_ARG, RCX_ARG = 7, 6, 2, 1  # SVC argument registers


def to_signed(value: int) -> int:
    return value - (1 << 64) if value & _SIGN else value


@dataclass
class ExecResult:
    """Outcome of a completed (halted) execution."""

    steps: int
    cycles: float
    rip: int
    aex_events: int
    return_value: int


@dataclass(frozen=True)
class CpuState:
    """Complete architectural + accounting state at a safe point.

    Captured by :meth:`CPU.snapshot` only *between* ``run`` calls —
    superblock boundaries on the translating executor, instruction
    boundaries on the step engine — where the locals of the dispatch
    loops have been written back and flags are materialized.  Restoring
    it into a freshly built CPU over identical memory resumes execution
    bit-identically, including the seeded AEX schedule (the Mersenne
    Twister state rides along so post-resume interrupt arrivals match
    the uninterrupted run).
    """

    regs: tuple                 # 16 x u64
    rip: int
    f_eq: bool
    f_lt_s: bool
    f_lt_u: bool
    steps: int
    cycles: float
    aex_events: int
    epc_faults: int
    halted: bool
    #: EPC residency in LRU order (oldest first) and the ever-loaded
    #: set; both ``None`` when the cost model has no EPC cap.
    epc_resident: tuple = None
    epc_ever: frozenset = None
    #: Instructions left until the next AEX fires.
    aex_countdown: int = 0
    #: ``random.Random.getstate()`` of the schedule's RNG (None when
    #: AEX injection is disabled).
    aex_rng_state: tuple = None


class CPU:
    """One hardware thread executing inside the enclave."""

    def __init__(self, space: AddressSpace, entry: int,
                 cost_model: CostModel = None,
                 aex_schedule: AexSchedule = None,
                 svc_handler=None,
                 initial_rsp: int = 0,
                 ssa_addr: int = 0,
                 hot_range=(0, 0),
                 executor: str = None,
                 branch_targets=None,
                 flag_kill=None):
        self.space = space
        self.entry = entry
        self.regs = [0] * 16
        self.rip = entry
        self.regs[4] = initial_rsp  # RSP
        self.f_eq = False
        self.f_lt_s = False
        self.f_lt_u = False
        self.cost_model = cost_model or CostModel()
        self.aex_schedule = aex_schedule or AexSchedule.disabled()
        self.svc_handler = svc_handler
        self.ssa_addr = ssa_addr
        #: [lo, hi) of the loader's hot cells (shadow stack, marker,
        #: branch map): memory ops there cost ``hot_mem_cost``.
        self.hot_range = hot_range
        #: Verifier-trusted indirect-branch targets (absolute; the P5
        #: branch-target list) — gates inline-cache fills for JMP_R and
        #: CALL_R sites.  None when no loader metadata is available.
        self.branch_targets = branch_targets
        #: Leaders whose flags are dead on entry per the verified RDD
        #: liveness pass (absolute addresses); extra veto on the
        #: translator's block-local kill-clean analysis.
        self.flag_kill = flag_kill
        self.executor = executor or self.cost_model.executor
        if self.executor not in ("translate", "step"):
            raise ValueError(f"unknown executor {self.executor!r}")
        #: Compile every translatable block on first dispatch instead
        #: of after the cold-run threshold.  Off by default: cold
        #: first-run latency suffers (single-shot traces pay full
        #: codegen for one execution).  Steady-state warm-up flips it
        #: on for the untimed priming run so the block cache reaches a
        #: fixed point in one pass — under AEX schedules the lazy
        #: threshold otherwise keeps crossing on stubs born at
        #: interrupt-resume rips for dozens of runs.
        self.jit_eager = False
        self.steps = 0
        self.cycles = 0.0
        self.aex_events = 0
        #: EPC paging-model state (see CostModel.epc_pages)
        self.epc_faults = 0
        self._epc_resident = None
        self._epc_ever = None
        if self.cost_model.epc_pages:
            from collections import OrderedDict
            self._epc_resident = OrderedDict()
            self._epc_ever = set()
        self._halted = False
        self._icache = {}
        self._icache_version = space.code_version
        self._aex_timer = AexTimer(self.aex_schedule)
        #: Superblock cache (translating executor); built lazily.
        self._blocks = None
        #: (block, instr index, chain-predecessor retires, cycles, fk,
        #: fa, fb) recorded by a translated block's exception hook so
        #: the dispatch loop can reconstruct the architectural fault
        #: state (first-wins across chained frames).
        self._cf = None

    # -- helpers -----------------------------------------------------------

    def _mem_addr(self, mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.regs[mem.base]
        if mem.index is not None:
            addr += self.regs[mem.index] * mem.scale
        return addr & _U64

    def _epc_touch(self, address: int) -> float:
        """EPC paging model: touch a page, return the cycle cost.

        Shared by both executors and the stack helpers so every path
        accounts residency identically."""
        page = address >> 12
        resident = self._epc_resident
        if page in resident:
            resident.move_to_end(page)
            return 0.0
        if len(resident) >= self.cost_model.epc_pages:
            resident.popitem(last=False)   # evict LRU (EWB)
        resident[page] = None
        if page in self._epc_ever:
            self.epc_faults += 1
            return self.cost_model.epc_paging_cost  # reload (ELDU)
        self._epc_ever.add(page)           # first touch: EADD'd at
        return 0.0                         # load, free here

    def _stack_push(self, value: int) -> float:
        """Shared stack-store path (inline PUSH/CALL and the public
        :meth:`push` both go through here).  Returns the EPC cycle
        delta so hot loops can keep ``cycles`` in a local."""
        regs = self.regs
        rsp = (regs[4] - 8) & _U64
        regs[4] = rsp
        delta = self._epc_touch(rsp) if self._epc_resident is not None \
            else 0.0
        self.space.store_u64(rsp, value)
        return delta

    def _stack_pop(self):
        """Shared stack-load path; returns ``(epc delta, value)``."""
        regs = self.regs
        rsp = regs[4]
        delta = self._epc_touch(rsp) if self._epc_resident is not None \
            else 0.0
        value = self.space.load_u64(rsp)
        regs[4] = (rsp + 8) & _U64
        return delta, value

    def push(self, value: int) -> None:
        self.cycles += self._stack_push(value)

    def pop(self) -> int:
        delta, value = self._stack_pop()
        self.cycles += delta
        return value

    def _set_closure_fault(self, block, index, ns, cycles,
                           fk, fa, fb) -> None:
        """Exception hook called by translated blocks before re-raising.

        First-wins: with chained blocks the exception unwinds through
        every frame of the chain and each one calls this hook — only
        the innermost (the faulting block) carries the architectural
        fault state.  Returns True to that innermost frame, telling it
        to flush its localized registers back to the shared ``regs``
        list (outer frames must NOT flush: their locals are stale
        copies from before they invoked the successor)."""
        if self._cf is None:
            self._cf = (block, index, ns, cycles, fk, fa, fb)
            return True
        return False

    def _do_aex(self) -> None:
        """Asynchronous exit: dump thread context into the SSA.

        Uses the privileged write path — hardware is not subject to page
        permissions — and clobbers whatever software (the P6 marker!)
        stored there.
        """
        if self.ssa_addr:
            frame = struct.pack("<16Q", *self.regs) + \
                struct.pack("<QQ", self.rip,
                            (self.f_eq << 0) | (self.f_lt_s << 1) |
                            (self.f_lt_u << 2))
            self.space.write_raw(self.ssa_addr, frame)
        self.aex_events += 1
        self.cycles += self.cost_model.aex_cost
        self._aex_timer.rearm()

    # -- decode ------------------------------------------------------------

    def _decode(self, rip: int):
        if not self.space.in_enclave(rip):
            raise CpuFault(f"fetch outside ELRANGE at {rip:#x}")
        view = self.space.enclave_view()
        try:
            instr, length = decode_instruction(
                view, rip - self.space.enclave_base)
        except Exception as exc:
            raise CpuFault(f"undecodable at {rip:#x}: {exc}") from exc
        self.space.check_exec(rip, length)
        entry = (instr.op, instr.operands, length,
                 self.cost_model.cost_of(instr.op))
        self._icache[rip] = entry
        return entry

    @property
    def halted(self) -> bool:
        return self._halted

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> CpuState:
        """Capture the full architectural + accounting state.

        Only valid at a safe point: between :meth:`run` calls (the
        ``finally`` blocks of both engines write the loop locals back
        and materialize lazy flags), never from inside an SVC handler
        or translated block.
        """
        schedule = self.aex_schedule
        return CpuState(
            regs=tuple(self.regs),
            rip=self.rip,
            f_eq=self.f_eq,
            f_lt_s=self.f_lt_s,
            f_lt_u=self.f_lt_u,
            steps=self.steps,
            cycles=self.cycles,
            aex_events=self.aex_events,
            epc_faults=self.epc_faults,
            halted=self._halted,
            epc_resident=(tuple(self._epc_resident)
                          if self._epc_resident is not None else None),
            epc_ever=(frozenset(self._epc_ever)
                      if self._epc_ever is not None else None),
            aex_countdown=self._aex_timer.countdown,
            aex_rng_state=(schedule._rng.getstate()
                           if schedule.enabled else None),
        )

    def restore(self, state: CpuState) -> None:
        """Adopt a snapshot taken by an identically configured CPU.

        The memory image must already hold the bytes it held at
        snapshot time (the bootstrap re-provisions and replays page
        deltas first); this call only rewrites CPU-side state.  The
        AEX RNG state is installed *after* the timer was built, because
        ``AexTimer.__init__`` itself draws from the schedule.
        """
        self.regs[:] = state.regs
        self.rip = state.rip
        self.f_eq = state.f_eq
        self.f_lt_s = state.f_lt_s
        self.f_lt_u = state.f_lt_u
        self.steps = state.steps
        self.cycles = state.cycles
        self.aex_events = state.aex_events
        self.epc_faults = state.epc_faults
        self._halted = state.halted
        if state.epc_resident is not None:
            from collections import OrderedDict
            self._epc_resident = OrderedDict(
                (page, None) for page in state.epc_resident)
            self._epc_ever = set(state.epc_ever)
        if state.aex_rng_state is not None:
            self.aex_schedule._rng.setstate(state.aex_rng_state)
        self._aex_timer.countdown = state.aex_countdown
        # Decoded-instruction and block caches are rebuilt lazily; drop
        # anything a previous life of this CPU object may have cached.
        self._icache.clear()
        self._icache_version = self.space.code_version
        self._blocks = None
        self._cf = None

    def reset_for_run(self, aex_schedule: AexSchedule = None,
                      svc_handler=None, initial_rsp: int = 0) -> None:
        """Rewind architectural state to power-on, keeping the JIT.

        The opposite trade-off from :meth:`restore`: checkpoints adopt
        *mid-run* state and rebuild caches, this rewinds to the *entry*
        state and deliberately keeps the translated-block cache and
        decoded-instruction cache warm.  It exists for steady-state
        benchmarking — a warm-up run populates and chains the block
        cache, the bootstrap restores the memory image, and the timed
        run then measures pure execution with zero compile or cold-run
        cost.  The AEX jitter stream is rewound too, so the timed run
        sees the exact interrupt arrivals of a cold run and stays
        bit-comparable with the single-step oracle.
        """
        self.regs[:] = [0] * 16
        self.regs[4] = initial_rsp
        self.rip = self.entry
        self.f_eq = self.f_lt_s = self.f_lt_u = False
        self.steps = 0
        self.cycles = 0.0
        self.aex_events = 0
        self.epc_faults = 0
        if self._epc_resident is not None:
            self._epc_resident.clear()
            self._epc_ever.clear()
        self._halted = False
        self._cf = None
        self.aex_schedule = aex_schedule or AexSchedule.disabled()
        self.aex_schedule.reset()
        self._aex_timer = AexTimer(self.aex_schedule)
        if svc_handler is not None:
            self.svc_handler = svc_handler
        cache = self._blocks
        if cache is not None:
            # Dynamic counters describe the measured run; the compiled
            # blocks, chain edges and inline caches stay — that warm
            # structure is what the reset exists to preserve.
            cache.cstat[0] = cache.cstat[1] = 0
            cache.disp_calls = 0

    # -- execution -----------------------------------------------------------

    def run(self, max_steps: int = 200_000_000,
            slice_steps: int = None) -> ExecResult:
        """Run until HLT.  Raises on faults and policy traps.

        ``slice_steps`` bounds *this call*: execution pauses (without
        error) after that many instructions so a scheduler can
        interleave threads; check :attr:`halted` to see whether the
        thread finished or merely yielded.
        """
        if self.executor == "translate":
            return self._run_translated(max_steps, slice_steps)
        return self._run_step(max_steps, slice_steps)

    # -- translating engine --------------------------------------------------

    def _run_translated(self, max_steps: int,
                        slice_steps: int = None) -> ExecResult:
        """Superblock dispatch loop.

        Looks up (translating on miss) the block at ``rip`` and runs its
        fused closure whenever the whole block fits before the next
        event — AEX countdown, ``slice_steps`` boundary, step limit.
        When an event would land inside the block, or the leader is
        untranslatable, it single-steps one instruction through the
        oracle engine instead, which replays the exact architectural
        semantics (SSA dumps land on mid-block state, faults carry the
        faulting ``rip``, slices pause on exact boundaries).
        """
        cache = self._blocks
        if cache is None:
            cache = self._blocks = BlockCache(self)
        regs = self.regs
        steps = self.steps
        cycles = self.cycles
        rip = self.rip
        fk = 0
        fa = pack_flags(self.f_eq, self.f_lt_s, self.f_lt_u)
        fb = 0
        timer = self._aex_timer
        aex_enabled = timer.enabled
        slice_limit = None if slice_steps is None else steps + slice_steps
        budget = max_steps if slice_limit is None \
            else min(max_steps, slice_limit)
        self._halted = False
        self._cf = None
        cache.abort = False
        cache.ic_miss = None
        blocks = cache.blocks
        blocks_get = blocks.get
        move_to_end = blocks.move_to_end
        translate = cache.translate
        chain_depth = CHAIN_DEPTH if cache.chain_on else 0
        # Tier 2 fuses much earlier: the structural code cache makes
        # codegen cost mostly string assembly, so the warm-up economics
        # that justify COLD_RUNS interpreter replays for tier 1 do not
        # hold.  Read through the module globals so tests pinning
        # COLD_RUNS keep their meaning for both tiers.
        if self.jit_eager:
            cold_runs = 0
        else:
            cold_runs = min(COLD_RUNS, CHAIN_COLD_RUNS) \
                if cache.chain_on else COLD_RUNS
        disp = 0
        try:
            while True:
                if steps >= max_steps:
                    raise CpuFault(f"step limit {max_steps} exceeded "
                                   f"at rip={rip:#x}")
                if slice_limit is not None and steps >= slice_limit:
                    break
                chunk = 1
                block = blocks_get(rip)
                if block is None:
                    block = translate(rip)
                else:
                    move_to_end(rip)   # LRU refresh
                if block is not None:
                    n = block.n
                    fn = block.fn
                    if fn is None and block.warm >= cold_runs:
                        fn = cache.compile_block(block)
                    if fn is not None:
                        # Headroom: instructions this invocation (the
                        # block plus any chained successors) may retire
                        # before the next event boundary.
                        hd = budget - steps
                        if aex_enabled:
                            c = timer.countdown - 1
                            if c < hd:
                                hd = c
                        if n <= hd:
                            cache.current = block
                            disp += 1
                            try:
                                (rip, fk, fa, fb, cycles,
                                 kind, aux, nexec) = fn(
                                    regs, fk, fa, fb, cycles,
                                    hd, 0, chain_depth)
                            except BaseException:
                                state = self._cf
                                if state is not None:
                                    (fblk, index, fns, cycles,
                                     fk, fa, fb) = state
                                    self._cf = None
                                    steps += fns + index + 1
                                    rip = fblk.rips[index]
                                    if aex_enabled:
                                        timer.debit(fns + index + 1)
                                raise
                            steps += nexec
                            if aex_enabled:
                                timer.debit(nexec)
                            if cache.ic_miss is not None:
                                cache.fill_ic()
                            if kind == 0:      # plain control transfer
                                continue
                            if kind == 2:      # HLT
                                self._halted = True
                                break
                            # kind == 1: SVC escape (rip holds the
                            # return address; the chain may have ended
                            # in any block, so the SVC's own address
                            # comes from cache.svc_rip)
                            if self.svc_handler is None:
                                rip = cache.svc_rip
                                raise CpuFault(f"SVC {aux:#x} with no "
                                               f"handler at {rip:#x}")
                            self.rip = rip
                            self.steps = steps
                            self.cycles = cycles
                            self.f_eq, self.f_lt_s, self.f_lt_u = \
                                materialize_flags(fk, fa, fb)
                            self.svc_handler(self, aux)
                            rip = self.rip
                            cycles = self.cycles
                            fk = 0
                            fa = pack_flags(self.f_eq, self.f_lt_s,
                                            self.f_lt_u)
                            fb = 0
                            continue
                        # Event horizon inside the block (AEX, slice or
                        # step-limit boundary): single-step through it.
                    else:
                        # Cold stub: replay the whole block through the
                        # oracle, clamped to the slice boundary; the
                        # oracle fires AEXes and faults architecturally
                        # at any point inside it.
                        block.warm += 1
                        chunk = n
                        if slice_limit is not None \
                                and steps + chunk > slice_limit:
                            chunk = slice_limit - steps
                # Untranslatable leader, cold stub, or an event landing
                # inside the block: replay ``chunk`` instructions
                # through the single-step oracle.
                self.rip = rip
                self.steps = steps
                self.cycles = cycles
                self.f_eq, self.f_lt_s, self.f_lt_u = \
                    materialize_flags(fk, fa, fb)
                cache.current = None
                try:
                    self._run_step(max_steps, chunk)
                finally:
                    # On a fault the oracle's own finally wrote the
                    # architectural fault state back to self; re-sync
                    # the locals so the outer finally preserves it.
                    rip = self.rip
                    steps = self.steps
                    cycles = self.cycles
                    fk = 0
                    fa = pack_flags(self.f_eq, self.f_lt_s, self.f_lt_u)
                    fb = 0
                if self._halted:
                    break
        finally:
            cache.disp_calls += disp
            self.rip = rip
            self.steps = steps
            self.cycles = cycles
            self.f_eq, self.f_lt_s, self.f_lt_u = \
                materialize_flags(fk, fa, fb)
        return ExecResult(steps, cycles, rip, self.aex_events,
                          regs[0])

    def jit_stats(self):
        """Counter snapshot of the translating executor's block cache
        (None when it never ran): compile/dispatch/chain/IC/invalidation
        counters plus the mean instructions retired per dispatch-loop
        closure entry — the direct measure of how much interpreter-exit
        tax chaining removed."""
        cache = self._blocks
        if cache is None:
            return None
        stats = cache.stats()
        disp = stats["dispatch_calls"]
        stats["steps"] = self.steps
        stats["mean_instrs_per_dispatch"] = \
            round(self.steps / disp, 2) if disp else 0.0
        return stats

    # -- single-step engine (the differential oracle) ------------------------

    def _run_step(self, max_steps: int,
                  slice_steps: int = None) -> ExecResult:
        """Legacy one-instruction-at-a-time interpreter.

        The loop keeps the hottest state (registers, decoded-instruction
        cache, accumulators) in locals and writes it back around every
        escape point (SVC, AEX, fault), trading repetition for
        interpreter throughput.
        """
        regs = self.regs
        space = self.space
        load_u64 = space.load_u64
        store_u64 = space.store_u64
        load_u8 = space.load_u8
        store_u8 = space.store_u8
        timer = self._aex_timer
        aex_enabled = timer.enabled
        hot_lo, hot_hi = self.hot_range
        hot_cost = self.cost_model.hot_mem_cost
        epc_resident = self._epc_resident
        epc_touch = self._epc_touch
        stack_push = self._stack_push
        stack_pop = self._stack_pop
        icache = self._icache
        steps = self.steps
        cycles = self.cycles
        rip = self.rip
        f_eq = self.f_eq
        f_lt_s = self.f_lt_s
        f_lt_u = self.f_lt_u
        self._halted = False
        slice_limit = None if slice_steps is None else steps + slice_steps

        try:
            while True:
                if steps >= max_steps:
                    raise CpuFault(f"step limit {max_steps} exceeded "
                                   f"at rip={rip:#x}")
                if slice_limit is not None and steps >= slice_limit:
                    break
                if aex_enabled:
                    if timer.tick():
                        self.rip = rip
                        self.cycles = cycles
                        self.f_eq, self.f_lt_s, self.f_lt_u = \
                            f_eq, f_lt_s, f_lt_u
                        self._do_aex()
                        cycles = self.cycles
                if space.code_version != self._icache_version:
                    icache.clear()
                    self._icache_version = space.code_version
                entry = icache.get(rip)
                if entry is None:
                    entry = self._decode(rip)
                op, ops, length, cost = entry
                steps += 1
                cycles += cost
                next_rip = rip + length

                if op == Op.MOV_RM:
                    mem = ops[1]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        cycles += epc_touch(addr)
                    regs[ops[0]] = load_u64(addr)
                elif op == Op.MOV_MR:
                    mem = ops[0]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        cycles += epc_touch(addr)
                    store_u64(addr, regs[ops[1]])
                elif op == Op.MOV_RR:
                    regs[ops[0]] = regs[ops[1]]
                elif op == Op.MOV_RI:
                    regs[ops[0]] = ops[1]
                elif op == Op.MOV_MI:
                    mem = ops[0]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        cycles += epc_touch(addr)
                    store_u64(addr, ops[1] & _U64)
                elif op == Op.LEA:
                    mem = ops[1]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    regs[ops[0]] = addr & _U64
                elif op == Op.LDB:
                    mem = ops[1]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        cycles += epc_touch(addr)
                    regs[ops[0]] = load_u8(addr)
                elif op == Op.STB:
                    mem = ops[0]
                    addr = mem.disp
                    if mem.base is not None:
                        addr += regs[mem.base]
                    if mem.index is not None:
                        addr += regs[mem.index] * mem.scale
                    addr &= _U64
                    if hot_lo <= addr < hot_hi:
                        cycles += hot_cost - cost
                    elif epc_resident is not None:
                        cycles += epc_touch(addr)
                    store_u8(addr, regs[ops[1]])
                elif op == Op.ADD_RR:
                    regs[ops[0]] = (regs[ops[0]] + regs[ops[1]]) & _U64
                elif op == Op.ADD_RI:
                    regs[ops[0]] = (regs[ops[0]] + ops[1]) & _U64
                elif op == Op.SUB_RR:
                    regs[ops[0]] = (regs[ops[0]] - regs[ops[1]]) & _U64
                elif op == Op.SUB_RI:
                    regs[ops[0]] = (regs[ops[0]] - ops[1]) & _U64
                elif op == Op.IMUL_RR:
                    a = regs[ops[0]]
                    b = regs[ops[1]]
                    if a & _SIGN:
                        a -= 1 << 64
                    if b & _SIGN:
                        b -= 1 << 64
                    regs[ops[0]] = (a * b) & _U64
                elif op == Op.IMUL_RI:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    regs[ops[0]] = (a * ops[1]) & _U64
                elif op == Op.AND_RR:
                    regs[ops[0]] &= regs[ops[1]]
                elif op == Op.AND_RI:
                    regs[ops[0]] &= ops[1] & _U64
                elif op == Op.OR_RR:
                    regs[ops[0]] |= regs[ops[1]]
                elif op == Op.OR_RI:
                    regs[ops[0]] |= ops[1] & _U64
                elif op == Op.XOR_RR:
                    regs[ops[0]] ^= regs[ops[1]]
                elif op == Op.XOR_RI:
                    regs[ops[0]] ^= ops[1] & _U64
                elif op == Op.SHL_RR:
                    regs[ops[0]] = (regs[ops[0]]
                                    << (regs[ops[1]] & 63)) & _U64
                elif op == Op.SHL_RI:
                    regs[ops[0]] = (regs[ops[0]] << (ops[1] & 63)) & _U64
                elif op == Op.SHR_RR:
                    regs[ops[0]] >>= (regs[ops[1]] & 63)
                elif op == Op.SHR_RI:
                    regs[ops[0]] >>= (ops[1] & 63)
                elif op == Op.SAR_RR:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    regs[ops[0]] = (a >> (regs[ops[1]] & 63)) & _U64
                elif op == Op.SAR_RI:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    regs[ops[0]] = (a >> (ops[1] & 63)) & _U64
                elif op == Op.DIV_RR or op == Op.DIV_RI or \
                        op == Op.MOD_RR or op == Op.MOD_RI:
                    a = regs[ops[0]]
                    if a & _SIGN:
                        a -= 1 << 64
                    if op == Op.DIV_RR or op == Op.MOD_RR:
                        b = regs[ops[1]]
                        if b & _SIGN:
                            b -= 1 << 64
                    else:
                        b = ops[1]
                    if b == 0:
                        raise CpuFault(f"division by zero at {rip:#x}")
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    if op == Op.DIV_RR or op == Op.DIV_RI:
                        regs[ops[0]] = q & _U64
                    else:
                        regs[ops[0]] = (a - q * b) & _U64
                elif op == Op.NEG:
                    regs[ops[0]] = (-regs[ops[0]]) & _U64
                elif op == Op.NOT:
                    regs[ops[0]] = (~regs[ops[0]]) & _U64
                elif op == Op.CMP_RR:
                    a = regs[ops[0]]
                    b = regs[ops[1]]
                    f_eq = a == b
                    f_lt_u = a < b
                    if a & _SIGN:
                        a -= 1 << 64
                    if b & _SIGN:
                        b -= 1 << 64
                    f_lt_s = a < b
                elif op == Op.CMP_RI:
                    a = regs[ops[0]]
                    b = ops[1]
                    bu = b & _U64
                    f_eq = a == bu
                    f_lt_u = a < bu
                    if a & _SIGN:
                        a -= 1 << 64
                    f_lt_s = a < b
                elif op == Op.TEST_RR:
                    masked = regs[ops[0]] & regs[ops[1]]
                    f_eq = masked == 0
                    f_lt_s = bool(masked & _SIGN)
                    f_lt_u = False
                elif op == Op.JMP:
                    next_rip += ops[0]
                elif op == Op.JMP_R:
                    next_rip = regs[ops[0]]
                elif op == Op.JE:
                    if f_eq:
                        next_rip += ops[0]
                elif op == Op.JNE:
                    if not f_eq:
                        next_rip += ops[0]
                elif op == Op.JL:
                    if f_lt_s:
                        next_rip += ops[0]
                elif op == Op.JLE:
                    if f_lt_s or f_eq:
                        next_rip += ops[0]
                elif op == Op.JG:
                    if not (f_lt_s or f_eq):
                        next_rip += ops[0]
                elif op == Op.JGE:
                    if not f_lt_s:
                        next_rip += ops[0]
                elif op == Op.JB:
                    if f_lt_u:
                        next_rip += ops[0]
                elif op == Op.JBE:
                    if f_lt_u or f_eq:
                        next_rip += ops[0]
                elif op == Op.JA:
                    if not (f_lt_u or f_eq):
                        next_rip += ops[0]
                elif op == Op.JAE:
                    if not f_lt_u:
                        next_rip += ops[0]
                elif op == Op.CALL:
                    cycles += stack_push(next_rip)
                    next_rip += ops[0]
                elif op == Op.CALL_R:
                    cycles += stack_push(next_rip)
                    next_rip = regs[ops[0]]
                elif op == Op.RET:
                    delta, next_rip = stack_pop()
                    cycles += delta
                elif op == Op.PUSH_R:
                    cycles += stack_push(regs[ops[0]])
                elif op == Op.PUSH_I:
                    cycles += stack_push(ops[0] & _U64)
                elif op == Op.POP_R:
                    delta, regs[ops[0]] = stack_pop()
                    cycles += delta
                elif op == Op.SVC:
                    if self.svc_handler is None:
                        raise CpuFault(f"SVC {ops[0]:#x} with no handler "
                                       f"at {rip:#x}")
                    # expose architectural state to the handler
                    self.rip = next_rip
                    self.steps = steps
                    self.cycles = cycles
                    self.f_eq, self.f_lt_s, self.f_lt_u = f_eq, f_lt_s, f_lt_u
                    self.svc_handler(self, ops[0])
                    next_rip = self.rip
                    cycles = self.cycles
                    f_eq, f_lt_s, f_lt_u = self.f_eq, self.f_lt_s, self.f_lt_u
                elif op == Op.NOP:
                    pass
                elif op == Op.HLT:
                    rip = next_rip
                    self._halted = True
                    break
                elif op == Op.TRAP:
                    raise PolicyViolation(ops[0], rip)
                else:  # pragma: no cover - decode guarantees known opcodes
                    raise CpuFault(f"unimplemented opcode {op:#x}")

                rip = next_rip & _U64
        finally:
            self.rip = rip
            self.steps = steps
            self.cycles = cycles
            self.f_eq, self.f_lt_s, self.f_lt_u = f_eq, f_lt_s, f_lt_u

        return ExecResult(steps, cycles, rip, self.aex_events,
                          regs[0])
