"""Cycle cost model for DX86 execution.

The paper measures wall-clock time on a Xeon E3-1280; an interpreter
cannot reproduce absolute times, so overheads are computed from a
deterministic cycle account instead.  Costs model a modern out-of-order
core at a coarse grain:

* simple ALU/move/compare ops are fractional — a 4-wide core retires
  several per cycle, which is why Fig. 5's 7-instruction annotation
  costs real x86 only a few percent;
* memory operations carry an L1-dominated average; accesses to the
  loader's *hot cells* (shadow-stack top, SSA marker, AEX counter, the
  branch byte map — a handful of permanently-L1-resident lines hammered
  by every annotation) cost ``hot_mem_cost`` instead;
* multiply/divide and call/return carry their real latencies; enclave
  transitions (OCall) pay the ~8k-cycle SGX round trip.

The constants were calibrated once against the regimes Table II reports
(store-guard overhead in the single digits to ~15%, CFI hurting
indirect-branch-heavy code most, P6 the largest increment), then
frozen; benchmarks only compare ratios computed under the same model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa.instructions import Op

#: Opcodes whose cost is reduced to ``hot_mem_cost`` when the effective
#: address falls inside the hot loader-cell range.
MEM_OPS = frozenset({Op.MOV_RM, Op.MOV_MR, Op.MOV_MI, Op.LDB, Op.STB})


def _default_costs() -> Dict[int, float]:
    cheap = 0.25       # issues in parallel on a wide core
    load = 3.0         # L1-dominated average
    store = 3.0
    branch = 0.6
    costs = {
        Op.NOP: cheap, Op.HLT: 1.0, Op.TRAP: 1.0,
        Op.MOV_RR: cheap, Op.MOV_RI: cheap, Op.LEA: cheap,
        Op.MOV_RM: load, Op.LDB: load,
        Op.MOV_MR: store, Op.MOV_MI: store, Op.STB: store,
        Op.NEG: cheap, Op.NOT: cheap,
        Op.CMP_RR: cheap, Op.CMP_RI: cheap, Op.TEST_RR: cheap,
        Op.JMP: branch, Op.JMP_R: 1.2,
        Op.CALL: 12.0, Op.CALL_R: 13.0, Op.RET: 12.0,
        Op.PUSH_R: store, Op.PUSH_I: store, Op.POP_R: load,
        Op.SVC: 8000.0,
    }
    for op in (Op.ADD_RR, Op.SUB_RR, Op.AND_RR, Op.OR_RR, Op.XOR_RR,
               Op.SHL_RR, Op.SHR_RR, Op.SAR_RR,
               Op.ADD_RI, Op.SUB_RI, Op.AND_RI, Op.OR_RI, Op.XOR_RI,
               Op.SHL_RI, Op.SHR_RI, Op.SAR_RI):
        costs[op] = cheap
    costs[Op.IMUL_RR] = 3.0
    costs[Op.IMUL_RI] = 3.0
    for op in (Op.DIV_RR, Op.DIV_RI, Op.MOD_RR, Op.MOD_RI):
        costs[op] = 26.0
    for op in (Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE,
               Op.JB, Op.JBE, Op.JA, Op.JAE):
        costs[op] = branch
    return costs


@dataclass
class CostModel:
    """Per-opcode cycle costs plus event costs."""

    costs: Dict[int, float] = field(default_factory=_default_costs)
    #: Full AEX round trip (exit + OS handling + ERESUME).
    aex_cost: float = 12000.0
    #: Memory ops hitting the annotation hot cells cost this instead.
    hot_mem_cost: float = 1.0
    #: EPC model (§II: "virtual memory support is available, [but] it
    #: incurs significant overheads in paging").  When ``epc_pages`` is
    #: nonzero, the CPU tracks the enclave's resident working set with
    #: an LRU of that many 4 KiB pages; touching a non-resident page
    #: pays ``epc_paging_cost`` (EWB+ELDU round trip: encrypt, evict,
    #: reload, MAC-check).  0 disables the model — the default for the
    #: kilobyte-scale benchmark workloads, which fit the EPC trivially.
    epc_pages: int = 0
    epc_paging_cost: float = 40000.0
    #: Which execution engine :class:`~repro.vm.cpu.CPU` uses by
    #: default: ``"translate"`` (superblock-translating executor) or
    #: ``"step"`` (the legacy single-step interpreter, kept as a
    #: differential oracle).  A ``CPU(executor=...)`` argument wins.
    executor: str = "translate"
    #: Tier-2 translator features (superblock chaining, indirect-branch
    #: inline caches, cross-chain flag elision, self-loop register
    #: hoisting).  False reproduces the PR 1 tier-1 translator — kept
    #: selectable so benchmarks can attribute the speedup and the
    #: differential harness can cross-check all three engines.
    jit_chain: bool = True
    #: Block-cache capacity (LRU-evicted beyond this): bounds memory on
    #: pathological self-modifying workloads that mint fresh leaders.
    jit_block_cap: int = 4096

    def cost_of(self, op: int) -> float:
        return self.costs[op]

    @classmethod
    def for_executor(cls, name: str) -> "CostModel":
        """Resolve a bench-harness executor label, including the
        ``"translate-t1"`` alias for the unchained tier-1 translator."""
        if name == "translate-t1":
            return cls(executor="translate", jit_chain=False)
        return cls(executor=name)

    @classmethod
    def unit(cls) -> "CostModel":
        """Every instruction costs 1 — pure instruction counting."""
        return cls(costs={op: 1.0 for op in _default_costs()},
                   aex_cost=0.0, hot_mem_cost=1.0)

    @classmethod
    def with_epc_limit(cls, pages: int) -> "CostModel":
        """Default costs plus an EPC residency limit of ``pages``."""
        return cls(epc_pages=pages)
