"""Superblock translator for the DX86 VM — tier 1 and tier 2.

The single-step engine pays a dict lookup, an AEX countdown tick, a
code-version compare and a Python if/elif walk for *every* retired
instruction.  This module removes those per-instruction costs by fusing
each straight-line region (a *superblock*: leader up to and including
the first control transfer, ``SVC``, ``HLT`` or ``TRAP``) into one
specialized Python closure:

* operands, effective-address shapes, costs and branch targets are baked
  into the generated source as literals, so the closure is pure
  register-file arithmetic plus the load/store calls;
* flags are *lazy* — ``CMP``/``TEST`` record their operands and a kind
  tag instead of computing ``f_eq``/``f_lt_s``/``f_lt_u``; conditional
  branches test predicates on the recorded operands directly, and the
  three architectural booleans are materialized only at escape points
  (SVC, AEX, run exit) via :func:`materialize_flags`;
* cycle accounting is emitted as one ``cycles += <literal>`` per
  instruction *in legacy retirement order* — float addition is not
  associative, so batching per-block sums would diverge from the
  single-step engine's bit-exact account;
* self-modifying code is handled by an invalidation hook registered on
  the :class:`~repro.sgx.memory.AddressSpace`: a store into the watched
  code range drops every overlapping block from the cache (severing the
  chain edges below), and sets :attr:`BlockCache.abort` — generated code
  checks the flag after each store and returns early with the exact
  count of retired instructions, so execution resumes through a freshly
  translated block.

On top of the tier-1 translator, tier 2 (``CostModel.jit_chain``, the
default) removes the remaining *per-block* dispatch tax:

* **superblock chaining** — a block whose terminator targets a fixed
  address carries a *chain cell* ``[fn, n]`` per exit edge; once both
  blocks are compiled the cell is patched with the successor's closure
  and the exit invokes it directly instead of returning to the dispatch
  loop.  Every hop re-checks the instruction headroom ``hd`` (the
  dispatch loop computes it from the step budget and the AEX countdown),
  so AEX timers, ``slice_steps`` safe points, and checkpoint/watchdog
  boundaries fire at exactly the same instruction boundaries as the
  unchained executor, and a chain-depth budget ``cd`` bounds Python
  recursion.  A block whose terminator jumps to its *own* leader
  compiles into a ``while 1:`` loop — the hottest shape pays no call at
  all per iteration;
* **monomorphic inline caches** — each indirect-branch site (``JMP_R``,
  ``CALL_R``, ``RET``) carries an IC cell ``[target, fn, n]`` caching
  its last-resolved target closure.  A hit chains directly; a miss (or a
  mispredict) records the site on :attr:`BlockCache.ic_miss` and falls
  back to the dispatch loop, which refills the cell — for ``JMP_R`` and
  ``CALL_R`` only after checking the target against the P5
  branch-target list the verifier already trusts;
* **cross-chain flag elision and register hoisting** — a flag setter
  whose state is provably re-defined before any observation point is
  emitted as cost-only; the *trailing* setter of a block is deferred to
  the dispatch-return path and skipped entirely on chain edges whose
  successor is *kill-clean* (re-sets flags before any reader, fault
  point or escape — checked block-locally at compile time and vetoed by
  the verifier's RDD liveness metadata when provided).  Self-loop blocks
  additionally hoist registers that are read but never written into
  Python locals for the duration of the loop.

The generated closure receives the hot state plus the chain budget and
returns the totals::

    (next_rip, fk, fa, fb, cycles, kind, aux, nexec) = \
        block.fn(regs, fk, fa, fb, cycles, hd, 0, chain_depth)

``hd`` is the instruction headroom for the whole invocation (chained
successors included), ``ns`` the instructions retired by predecessors in
the running chain, ``cd`` the remaining chain depth.  ``kind`` is 0 for
a plain control transfer, 1 for an SVC escape (``aux`` is the service
number), 2 for HLT.  ``nexec`` is how many instructions retired across
the whole chain.  Faults raise through the closures; each frame's
``except`` hook reports the faulting block, instruction index and the
in-flight accumulators to the CPU (``CPU._set_closure_fault``,
first-wins so the innermost — faulting — frame is the one recorded).
"""

from __future__ import annotations

import struct
import sys
import weakref
from collections import OrderedDict

from ..errors import EncodingError, MemoryFault
from ..isa.encoding import decode_block
from ..isa.instructions import (
    BLOCK_TERMINATORS, FLAG_NEUTRAL_OPS, FLAG_SETTER_OPS, Op,
)

_U64 = (1 << 64) - 1
_SIGN = 1 << 63
_STRUCT_Q = struct.Struct("<Q")

#: Tier 2 reads/writes aligned u64s through a native-order memoryview
#: cast over the enclave backing store; that is only the architectural
#: little-endian DX86 order on a little-endian host, so big-endian
#: hosts keep the explicit ``struct`` path.
_LITTLE = sys.byteorder == "little"

#: Translation stops after this many instructions even without a
#: terminator (bounds both codegen time and the AEX fast-path window:
#: the translating executor only runs a block when the countdown
#: exceeds its length).
MAX_BLOCK_INSTRS = 64

#: Tier-2 traces may grow past the tier-1 cap: tail duplication fuses
#: through mid-trace branches, so the loop backedge that lets
#: ``_compile`` close a native ``while`` often sits well beyond 64
#: instructions under annotation-heavy settings.  Still bounded so a
#: pathological straight-line region cannot make codegen quadratic.
MAX_TRACE_INSTRS = 256

#: Stub visits replayed through the single-step oracle before a block
#: is considered hot and fused (``Block.warm`` counts them).  Codegen
#: costs ~100x one oracle replay, so straight-through init code and
#: rarely-taken paths are never compiled.
COLD_RUNS = 12

#: Tier-2 warm-up threshold.  The structural code cache makes chained
#: codegen mostly string assembly (the ``compile`` step is usually a
#: cache hit), so tier 2 fuses much earlier than tier 1 — but not on
#: the very first visit, which would pay source generation for every
#: one-shot init block.  Tests that pin ``COLD_RUNS`` to 0 get 0 for
#: both tiers (the dispatch loop takes the min).
CHAIN_COLD_RUNS = 6

#: Maximum direct chain hops per dispatch entry.  Each hop is one Python
#: stack frame (self-loops excepted — they compile to a loop), so this
#: also bounds recursion; the headroom check ``ns + n <= hd`` is what
#: actually guarantees AEX/slice exactness.
CHAIN_DEPTH = 24

#: Process-wide template code cache: generated tier-2 sources embed
#: their block-specific values (addresses, immediates, bounds, costs)
#: as default-argument *parameters* instead of literals, so every
#: structurally identical block — and annotated binaries repeat the
#: same guard/annotation shapes hundreds of times — maps to the same
#: source text and shares one compiled code object.  Keyed by source;
#: values are code objects (immutable, safe to share across enclaves:
#: all per-block state is bound per-``exec`` through the defaults).
_CODE_CACHE = {}
_CODE_CACHE_CAP = 8192


# -- lazy flag state --------------------------------------------------------
#
# (fk, fa, fb) encodes the flag register symbolically:
#   fk == 0: concrete     — fa packs f_eq | f_lt_s << 1 | f_lt_u << 2
#   fk == 1: pending CMP  — fa, fb are the unsigned operand values
#   fk == 2: pending TEST — fa is the masked value (a & b)

def pack_flags(f_eq, f_lt_s, f_lt_u) -> int:
    """Pack the three architectural booleans into a concrete fa word."""
    return (1 if f_eq else 0) | (2 if f_lt_s else 0) | (4 if f_lt_u else 0)


def materialize_flags(fk, fa, fb):
    """Collapse a lazy flag state to ``(f_eq, f_lt_s, f_lt_u)``."""
    if fk == 0:
        return bool(fa & 1), bool(fa & 2), bool(fa & 4)
    if fk == 1:
        # Signed compare via sign-bit flip: a <s b  iff  a^S <u b^S.
        return fa == fb, (fa ^ _SIGN) < (fb ^ _SIGN), fa < fb
    return fa == 0, bool(fa & _SIGN), False


def eval_jcc(op, fk, fa, fb) -> bool:
    """Evaluate a conditional-jump predicate against a lazy flag state.

    Used by generated code only when the flag setter is *not* in the
    same block (flags flowing across a block boundary), so the kind tag
    is unknown at translation time."""
    f_eq, f_lt_s, f_lt_u = materialize_flags(fk, fa, fb)
    if op == Op.JE:
        return f_eq
    if op == Op.JNE:
        return not f_eq
    if op == Op.JL:
        return f_lt_s
    if op == Op.JLE:
        return f_lt_s or f_eq
    if op == Op.JG:
        return not (f_lt_s or f_eq)
    if op == Op.JGE:
        return not f_lt_s
    if op == Op.JB:
        return f_lt_u
    if op == Op.JBE:
        return f_lt_u or f_eq
    if op == Op.JA:
        return not (f_lt_u or f_eq)
    return not f_lt_u  # JAE


#: Jcc predicate source when the in-block setter was a CMP (fk == 1).
#: ``{sg}`` is the sign-bit expression (a literal, or the template
#: parameter holding it).
_CMP_PRED = {
    Op.JE: "fa == fb",
    Op.JNE: "fa != fb",
    Op.JB: "fa < fb",
    Op.JAE: "fa >= fb",
    Op.JBE: "fa <= fb",
    Op.JA: "fa > fb",
    Op.JL: "fa ^ {sg} < fb ^ {sg}",
    Op.JGE: "fa ^ {sg} >= fb ^ {sg}",
    Op.JLE: "fa ^ {sg} <= fb ^ {sg}",
    Op.JG: "fa ^ {sg} > fb ^ {sg}",
}

#: Jcc predicate source when the in-block setter was a TEST (fk == 2).
_TEST_PRED = {
    Op.JE: "fa == 0",
    Op.JNE: "fa != 0",
    Op.JL: "fa & {sg}",
    Op.JGE: "not fa & {sg}",
    Op.JLE: "fa == 0 or fa & {sg}",
    Op.JG: "fa != 0 and not fa & {sg}",
    Op.JB: "False",
    Op.JAE: "True",
    Op.JBE: "fa == 0",
    Op.JA: "fa != 0",
}

#: Jcc predicate source on *concrete* packed flags (fk == 0): bit 1 is
#: f_eq, bit 2 f_lt_s, bit 4 f_lt_u.
_CONC_PRED = {
    Op.JE: "fa & 1",
    Op.JNE: "not fa & 1",
    Op.JL: "fa & 2",
    Op.JGE: "not fa & 2",
    Op.JLE: "fa & 3",
    Op.JG: "not fa & 3",
    Op.JB: "fa & 4",
    Op.JAE: "not fa & 4",
    Op.JBE: "fa & 5",
    Op.JA: "not fa & 5",
}

#: ``{d}`` is the destination *lvalue* (``regs[3]`` or a localized
#: ``r3``), ``{s}`` a source expression.
_ALU_RR = {
    Op.ADD_RR: "{d} = ({d} + {s}) & {m}",
    Op.SUB_RR: "{d} = ({d} - {s}) & {m}",
    Op.AND_RR: "{d} &= {s}",
    Op.OR_RR: "{d} |= {s}",
    Op.XOR_RR: "{d} ^= {s}",
    Op.SHL_RR: "{d} = ({d} << ({s} & 63)) & {m}",
    Op.SHR_RR: "{d} >>= {s} & 63",
    Op.SAR_RR: "{d} = ((({d} ^ {sg}) - {sg})"
               " >> ({s} & 63)) & {m}",
    Op.IMUL_RR: "{d} = ((({d} ^ {sg}) - {sg})"
                " * (({s} ^ {sg}) - {sg})) & {m}",
}

_SUPPORTED = frozenset(
    op for op in vars(Op).values() if isinstance(op, int))

#: Write effects for the trace-local constant folder: ops that write
#: their first operand with a value the folder does not model (it
#: models MOV_RI/MOV_RR/LEA exactly), ops that touch RSP implicitly,
#: and ops that write no register at all.  Anything outside all three
#: groups conservatively clears every tracked fact.
_CONST_KILL0 = frozenset({
    Op.MOV_RM, Op.LDB, Op.NEG, Op.NOT,
    Op.ADD_RI, Op.SUB_RI, Op.IMUL_RI, Op.AND_RI, Op.OR_RI,
    Op.XOR_RI, Op.SHL_RI, Op.SHR_RI, Op.SAR_RI,
    Op.DIV_RR, Op.DIV_RI, Op.MOD_RR, Op.MOD_RI,
}) | frozenset(_ALU_RR)
_CONST_STACK = frozenset({
    Op.PUSH_R, Op.PUSH_I, Op.POP_R, Op.CALL, Op.CALL_R, Op.RET,
})
_CONST_NEUTRAL = frozenset({
    Op.MOV_MR, Op.STB, Op.MOV_MI, Op.CMP_RR, Op.CMP_RI, Op.TEST_RR,
    Op.JMP, Op.JMP_R, Op.SVC, Op.NOP, Op.HLT, Op.TRAP,
}) | frozenset(_CMP_PRED)

#: Flag-neutral opcodes that write their first operand (used by the
#: trailing-setter analysis to detect source-register clobbers).
_NEUTRAL_WRITERS = FLAG_NEUTRAL_OPS - frozenset({Op.NOP})


def _setter_sources(instr):
    """Registers a CMP/TEST reads (whose values a deferred
    materialization would re-read at the exit point)."""
    if instr.op == Op.CMP_RI:
        return (instr.operands[0],)
    return (instr.operands[0], instr.operands[1])


def _flag_plan(items):
    """Block-local flag liveness: ``(dead, kill_clean, trailing)``.

    ``dead`` — indices of setters whose state is re-defined by another
    setter with only flag-neutral instructions in between (no fault
    frame, SSA dump or escape can observe them): emitted as cost-only.

    ``kill_clean`` — True when, from the leader, a setter executes
    before any observer, fault point or escape: a predecessor chaining
    here may skip materializing its trailing setter entirely.

    ``trailing`` — index of the block's last setter when nothing after
    it can observe flags inside the block (only neutral instructions,
    or a final direct JMP) and its source registers are not clobbered:
    its materialization can be deferred to the exit points.
    """
    dead = set()
    killer_ahead = False
    last = len(items) - 1
    for k in range(last, -1, -1):
        op = items[k][1].op
        if op in FLAG_SETTER_OPS:
            if killer_ahead:
                dead.add(k)
            killer_ahead = True
        elif op == Op.JMP and k != last:
            pass  # fused mid-trace jump: no flags, no fault, no exit
        elif op not in FLAG_NEUTRAL_OPS:
            killer_ahead = False
    kill_clean = killer_ahead

    trailing = None
    for k in range(last, -1, -1):
        if items[k][1].op in FLAG_SETTER_OPS:
            trailing = k
            break
    if trailing is not None:
        srcs = _setter_sources(items[trailing][1])
        for k in range(trailing + 1, last + 1):
            instr = items[k][1]
            op = instr.op
            if op == Op.JMP:
                if k == last:
                    break
                continue  # fused mid-trace jump (flag- and reg-inert)
            if op not in FLAG_NEUTRAL_OPS:
                trailing = None
                break
            if op in _NEUTRAL_WRITERS and instr.operands[0] in srcs:
                trailing = None
                break
    return dead, kill_clean, trailing


def _reg_counts(items):
    """Mention count per register across a decoded block (reads and
    writes both count — each mention localization saves is one
    ``regs[..]`` subscript).  Implicit RSP traffic (PUSH/POP/CALL/RET)
    counts double: every such op reads and rewrites RSP."""
    counts = {}

    def add(reg, k=1):
        counts[reg] = counts.get(reg, 0) + k

    def mem(m):
        if m.base is not None:
            add(m.base)
        if m.index is not None:
            add(m.index)

    for _, instr, _ in items:
        op = instr.op
        ops = instr.operands
        if op in (Op.MOV_RM, Op.LDB):
            mem(ops[1])
            add(ops[0])
        elif op in (Op.MOV_MR, Op.STB):
            mem(ops[0])
            add(ops[1])
        elif op == Op.MOV_MI:
            mem(ops[0])
        elif op in (Op.MOV_RR, Op.LEA):
            if op == Op.LEA:
                mem(ops[1])
            else:
                add(ops[1])
            add(ops[0])
        elif op == Op.MOV_RI:
            add(ops[0])
        elif op in _ALU_RR or op in (Op.DIV_RR, Op.MOD_RR,
                                     Op.CMP_RR, Op.TEST_RR):
            add(ops[0], 2)
            add(ops[1])
        elif op in (Op.ADD_RI, Op.SUB_RI, Op.IMUL_RI, Op.AND_RI,
                    Op.OR_RI, Op.XOR_RI, Op.SHL_RI, Op.SHR_RI,
                    Op.SAR_RI, Op.DIV_RI, Op.MOD_RI, Op.NEG, Op.NOT):
            add(ops[0], 2)
        elif op == Op.CMP_RI:
            add(ops[0])
        elif op == Op.JMP_R:
            add(ops[0])
        elif op == Op.CALL_R:
            add(ops[0])
            add(4, 2)
        elif op in (Op.CALL, Op.RET, Op.PUSH_I, Op.POP_R):
            add(4, 2)
            if op == Op.POP_R:
                add(ops[0])
        elif op == Op.PUSH_R:
            add(ops[0])
            add(4, 2)
    return counts


class Block:
    """One superblock: decoded immediately, compiled only when hot.

    The first :data:`COLD_RUNS` visits execute the block as a *stub*
    (``fn is None``): the dispatch loop replays it through the
    single-step oracle and bumps :attr:`warm`.  The next visit pays the
    codegen (``BlockCache.compile_block``).  This keeps Python
    ``compile()`` cost off straight-through init code — only leaders
    re-reached enough times (loops, called functions) are fused."""

    __slots__ = ("start", "lo", "end", "n", "rips", "items", "warm",
                 "fn", "src", "pages", "in_cells", "kill_clean")

    def __init__(self, start, end, rips, items, lo=None):
        self.start = start
        #: Bounding address range of every byte the block decodes from.
        #: For a plain block ``lo == start``; a trace that followed a
        #: backward JMP can span bytes *below* its leader.
        self.lo = start if lo is None else lo
        self.end = end
        self.n = len(rips)
        self.rips = rips
        self.items = items
        self.warm = 0
        self.fn = None
        self.src = None
        #: Page indices this block's bytes span (SMC invalidation index).
        self.pages = ()
        #: Inbound chain/IC cells pointing at this block's closure, as
        #: ``(cell, target, needs_kill, pred_block)`` tuples; severed in
        #: place when the block dies.
        self.in_cells = []
        #: True when flags are re-defined before any observation point
        #: from this leader (predecessors may chain in without
        #: materializing a trailing setter).  Set at compile time.
        self.kill_clean = False


class BlockCache:
    """Per-CPU cache of translated superblocks, keyed by leader address.

    Registers a weakref-based write hook on the CPU's address space so
    stores into the watched code range invalidate exactly the
    overlapping blocks (severing every inbound chain edge and IC, and
    aborting the running chain); once the cache is garbage-collected the
    hook reports itself dead and is pruned.

    The cache is bounded: :attr:`capacity` (``CostModel.jit_block_cap``)
    blocks, evicted in LRU order — the dispatch loop refreshes a leader
    on every lookup, so pathological SMC workloads recycle slots instead
    of growing without bound.  :attr:`by_page` indexes blocks by the
    4 KiB pages they span, making invalidation O(pages touched)."""

    def __init__(self, cpu):
        self.cpu = cpu
        cm = cpu.cost_model
        #: Tier-2 feature gate (chaining, ICs, elision, hoisting).
        self.chain_on = getattr(cm, "jit_chain", True)
        self.capacity = max(1, getattr(cm, "jit_block_cap", 4096))
        #: P5-trusted indirect-branch targets (absolute), or None when
        #: the CPU was built without loader metadata — guarded IC sites
        #: then never fill.
        self.trusted_targets = getattr(cpu, "branch_targets", None)
        #: Verified RDD flag-liveness metadata (absolute addresses with
        #: dead-on-entry flags), or None — used as an extra veto on the
        #: block-local kill-clean analysis, never as permission.
        self.flag_kill = getattr(cpu, "flag_kill", None)
        self.blocks = OrderedDict()
        #: page index -> [Block] (blocks whose bytes touch that page).
        self.by_page = {}
        #: leader addr -> [(cell, needs_kill, pred_block)] chain cells
        #: waiting for a block at that leader to compile.
        self.pending = {}
        #: leader addr -> (fn, n) for every *compiled* block — the
        #: megamorphic fallback table.  A poisoned indirect site (a RET
        #: shared by many call sites defeats a monomorphic IC) probes
        #: this shared map instead of bailing to dispatch on every
        #: execution.  Maintained in :meth:`compile_block` /
        #: :meth:`_drop`, so invalidation and eviction unmap entries
        #: the instant the block dies.
        self.fmap = {}
        #: Block the dispatch loop last entered (the hook uses it to
        #: detect self-modification of the running chain).
        self.current = None
        #: Set by the hook when a store may have invalidated code the
        #: running chain could touch; generated code polls it after
        #: each store and bails out with the exact retire count.
        self.abort = False
        #: ``(ic_cell, target, guarded)`` recorded by generated code on
        #: an IC miss/mispredict; the dispatch loop refills via
        #: :meth:`fill_ic`.
        self.ic_miss = None
        #: Address of the last SVC escape (error reporting only).
        self.svc_rip = 0
        #: Hot counters bumped by generated code: [ic hits, chain hops].
        self.cstat = [0, 0]
        self.compiles = 0
        #: Blocks whose generated source hit the process-wide template
        #: code cache (no ``builtins.compile`` paid).
        self.template_hits = 0
        self.disp_calls = 0
        self.ic_misses = 0
        self.ic_fills = 0
        self.links = 0
        self.invalidations = 0
        self.severs = 0
        self.evictions = 0
        self.elided_flags = 0
        self.hoisted = 0
        ref = weakref.ref(self)

        def _hook(addr, size):
            cache = ref()
            if cache is None:
                return False
            cache.invalidate(addr, size)
            return True

        cpu.space.add_code_write_hook(_hook)

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready counter snapshot (chain/IC hit rates ride into
        ``BENCH_vm.json`` through here)."""
        return {
            "blocks": len(self.blocks),
            "compiled": self.compiles,
            "template_hits": self.template_hits,
            "dispatch_calls": self.disp_calls,
            "chain_links": self.links,
            "chain_hops": self.cstat[1],
            "ic_hits": self.cstat[0],
            "ic_misses": self.ic_misses,
            "ic_fills": self.ic_fills,
            "invalidated_blocks": self.invalidations,
            "severed_edges": self.severs,
            "evicted_blocks": self.evictions,
            "elided_flag_writes": self.elided_flags,
            "hoisted_regs": self.hoisted,
        }

    def _drop(self, block) -> None:
        """Unindex a dead block and sever every cell pointing at it.

        Callers already removed it from :attr:`blocks`.  Severed direct
        cells whose predecessor is still alive are re-registered on
        :attr:`pending`, so a retranslation of this leader re-links
        them; ICs self-heal through the miss path instead."""
        by_page = self.by_page
        for pg in block.pages:
            bucket = by_page.get(pg)
            if bucket is not None:
                try:
                    bucket.remove(block)
                except ValueError:
                    pass
                if not bucket:
                    del by_page[pg]
        self.fmap.pop(block.start, None)
        cells = block.in_cells
        if cells:
            self.severs += len(cells)
            blocks_get = self.blocks.get
            for cell, target, needs_kill, pred in cells:
                if len(cell) == 4:     # IC: fresh chance for new code
                    cell[0] = -1
                    cell[1] = None
                    cell[2] = 0
                    cell[3] = 0
                else:                  # direct chain cell
                    cell[0] = None
                    cell[1] = 0
                if target is not None and pred is not None \
                        and blocks_get(pred.start) is pred:
                    self.pending.setdefault(target, []).append(
                        (cell, needs_kill, pred))
            block.in_cells = []

    def invalidate(self, addr, size) -> None:
        """Drop every block overlapping ``[addr, addr+size)``.

        O(pages touched) via :attr:`by_page`.  Sets :attr:`abort`
        whenever a block died while a chain may be running — the
        *executing* closure can be a chained successor of
        :attr:`current`, so this is deliberately conservative (an early
        return is always architecturally safe)."""
        hi = addr + size
        cur = self.current
        if cur is not None and cur.lo < hi and addr < cur.end:
            self.abort = True
        by_page = self.by_page
        if not by_page:
            return
        dead = []
        seen = set()
        for pg in range(addr >> 12, ((hi - 1) >> 12) + 1):
            bucket = by_page.get(pg)
            if not bucket:
                continue
            for b in bucket:
                if b.lo < hi and addr < b.end and id(b) not in seen:
                    seen.add(id(b))
                    dead.append(b)
        if not dead:
            return
        if cur is not None:
            self.abort = True
        self.invalidations += len(dead)
        blocks = self.blocks
        for b in dead:
            if blocks.get(b.start) is b:
                del blocks[b.start]
            self._drop(b)

    def fill_ic(self) -> None:
        """Resolve the pending IC miss recorded by generated code.

        Monomorphic last-target-wins: the cell is (re)pointed at the
        missed target if a compiled block exists for it — for guarded
        sites (``JMP_R``/``CALL_R``) only when the target is on the
        verifier-trusted P5 branch-target list."""
        ic, target, guarded = self.ic_miss
        self.ic_miss = None
        self.ic_misses += 1
        ic[3] += 1
        if ic[3] > 16:
            # Megamorphic site (e.g. a RET shared by many call sites):
            # stop flip-flopping the cell — the poison value never
            # matches a target and generated code stops reporting.
            ic[0] = -2
            ic[1] = None
            return
        if guarded:
            trusted = self.trusted_targets
            if trusted is None or target not in trusted:
                return
        blk = self.blocks.get(target)
        if blk is None or blk.fn is None:
            return
        ic[0] = target
        ic[1] = blk.fn
        ic[2] = blk.n
        self.ic_fills += 1
        cells = blk.in_cells
        if not any(entry[0] is ic for entry in cells):
            cells.append((ic, None, False, None))

    def _link_edges(self, block, edges) -> None:
        """Patch chain cells once both sides of an edge are compiled.

        ``edges`` are this block's outbound ``(cell, target,
        needs_kill)`` sites: targets already compiled are patched now,
        the rest parked on :attr:`pending`.  Then every predecessor
        waiting for *this* leader is patched in turn.  ``needs_kill``
        edges (the predecessor elided its trailing flag setter) only
        link to kill-clean successors."""
        blocks_get = self.blocks.get
        for cell, target, needs_kill in edges:
            tb = blocks_get(target)
            if tb is not None and tb.fn is not None:
                if needs_kill and not tb.kill_clean:
                    continue
                cell[0] = tb.fn
                cell[1] = tb.n
                tb.in_cells.append((cell, target, needs_kill, block))
                self.links += 1
            else:
                self.pending.setdefault(target, []).append(
                    (cell, needs_kill, block))
        waiters = self.pending.pop(block.start, None)
        if waiters:
            fn = block.fn
            n = block.n
            for cell, needs_kill, pred in waiters:
                if blocks_get(pred.start) is not pred:
                    continue  # predecessor died while parked
                if needs_kill and not block.kill_clean:
                    continue
                cell[0] = fn
                cell[1] = n
                block.in_cells.append(
                    (cell, block.start, needs_kill, pred))
                self.links += 1

    def translate(self, rip):
        """Decode the superblock whose leader is ``rip`` into a stub;
        None if the leader itself is undecodable or non-executable (the
        dispatch loop then single-steps so the fault surfaces with
        legacy semantics).

        Tier 2 builds *traces* with tail duplication: decoding follows
        direct unconditional JMPs (the JMP stays in the item list — it
        retires and is charged, but transfers no control) and the
        fall-through edge of conditional branches (the taken edge
        becomes a chained side exit), so a MiniC ``while`` loop — body
        with internal ifs, falling into a ``JMP`` back to a conditional
        header — becomes one block whose backedge targets its own
        leader and compiles to a native loop instead of a chain of
        closures per iteration.  Extension stops at the instruction
        cap, at any rip already in the trace (the branch then stays a
        terminator; a backedge to the leader itself is the loop case
        ``_compile`` recognizes), and at undecodable or non-executable
        targets."""
        space = self.cpu.space
        if not space.in_enclave(rip):
            return None
        base = space.enclave_base
        view = space.enclave_view()
        items = []
        seen = set()
        addr = rip
        # Compile-time return-address stack: extension walks through a
        # direct CALL into the callee and, at the matching RET, resumes
        # at the predicted return address — the whole call becomes one
        # trace with no transition at either end.  The prediction is
        # verified at run time (the RET item compiles to a guard on the
        # popped value), so a retargeted stack bails out correctly.
        ras = []
        cap = MAX_TRACE_INSTRS if self.chain_on else MAX_BLOCK_INSTRS
        while True:
            try:
                decoded = decode_block(view, addr - base,
                                       cap - len(items))
            except EncodingError:
                break
            clean = True
            for instr, length in decoded:
                if instr.op not in _SUPPORTED:
                    clean = False
                    break
                try:
                    space.check_exec(addr, length)
                except MemoryFault:
                    clean = False
                    break
                items.append((addr, instr, length))
                seen.add(addr)
                addr += length
            if not clean or not items:
                break
            la, li, ll = items[-1]
            top = li.op
            if not self.chain_on or len(items) >= cap:
                break
            if top == Op.JMP:
                nxt = (la + ll + li.operands[0]) & _U64
            elif top in _CMP_PRED:
                # Follow the fall-through; a taken edge that would
                # re-enter the trace is a loop backedge and must stay
                # a terminator so _compile can close the loop.
                if (la + ll + li.operands[0]) & _U64 in seen:
                    break
                nxt = (la + ll) & _U64
            elif top == Op.CALL:
                ras.append((la + ll) & _U64)
                nxt = (la + ll + li.operands[0]) & _U64
            elif top == Op.RET and ras:
                nxt = ras.pop()
            else:
                break
            if nxt in seen or not space.in_enclave(nxt):
                break
            addr = nxt
        if not items:
            return None
        lo = min(a for a, _, _ in items)
        end = max(a + ln for a, _, ln in items)
        block = Block(rip, end, [a for a, _, _ in items], items, lo=lo)
        pages = {a >> 12 for a, _, _ in items}
        pages.update((a + ln - 1) >> 12 for a, _, ln in items)
        block.pages = tuple(sorted(pages))
        blocks = self.blocks
        blocks[rip] = block
        by_page = self.by_page
        for pg in block.pages:
            by_page.setdefault(pg, []).append(block)
        while len(blocks) > self.capacity:
            _, old = blocks.popitem(last=False)
            self._drop(old)
            self.evictions += 1
        return block

    # -- code generation ---------------------------------------------------

    def compile_block(self, block):
        """Generate and install the fused closure for a warm stub."""
        fn, edges = self._compile(block.start, block.items, block)
        block.fn = fn
        block.items = None
        self.fmap[block.start] = (fn, block.n)
        self.compiles += 1
        if edges is not None:
            self._link_edges(block, edges)
        return fn

    def _compile(self, start, items, block):
        cpu = self.cpu
        cm = cpu.cost_model
        hot_lo, hot_hi = cpu.hot_range
        hot_on = hot_lo < hot_hi
        epc_on = cpu._epc_resident is not None
        chain_on = self.chain_on
        n = len(items)
        M = _U64
        S = _SIGN
        body = []
        #: Current structural indentation (grows inside guard regions).
        cur_ind = [""]

        def emit(line) -> None:
            body.append(cur_ind[0] + line)

        known = 0  # 0: entry flags (kind unknown), 1: CMP, 2: TEST

        # -- literal pool (template code cache) ----------------------------
        # Tier-2 sources embed no block-specific values: every address,
        # immediate, bound, cost and message is hoisted into a ``K<i>``
        # default-argument parameter, named in first-use order.  Blocks
        # with the same *shape* (op sequence, register indices, scales)
        # then produce byte-identical source and share one compiled code
        # object via the process-wide ``_CODE_CACHE`` — annotated
        # binaries repeat guard shapes hundreds of times, and
        # ``builtins.compile`` dominates warmup cost.  Anything that
        # changes emission *structure* (loop shape, watch/EPC/hot
        # gating, localization) changes the source text itself, so
        # sharing is always sound.  Tier-1 keeps plain literals.
        pool_names = {}
        pool_vals = {}

        def lit(v) -> str:
            if not chain_on:
                return repr(v)
            key = (type(v).__name__, v)
            name = pool_names.get(key)
            if name is None:
                name = f"K{len(pool_names)}"
                pool_names[key] = name
                pool_vals[name] = v
            return name

        MM = lit(M)   # pinned first: the mask is in every block
        SG = lit(S)

        # -- tier-2 pre-passes ---------------------------------------------
        last_addr, last_instr, last_len = items[-1]
        term_op = last_instr.op
        # Two native-loop shapes.  Taken backedge: the terminator's
        # jump target is this leader (do-while, or a JMP self-loop).
        # Fall-through backedge: trace extension pulled a conditional
        # loop *header* to the end of the body trace, so the Jcc's
        # taken edge leaves the loop and its fall-through is the
        # leader (the dominant MiniC ``while``/``for`` shape).
        is_loop = loop_fall = False
        if chain_on and (term_op in _CMP_PRED or term_op == Op.JMP) \
                and (last_addr + last_len + last_instr.operands[0]) \
                & M == start:
            is_loop = True
        elif chain_on and term_op in _CMP_PRED \
                and (last_addr + last_len) & M == start:
            is_loop = loop_fall = True

        # Internal forward guards.  A mid-trace Jcc whose taken target
        # is a *later* item of this same trace is an if-then diamond
        # (the shape every P1-P6 annotation compiles to: a hot guard
        # skipping its own slow path).  Instead of a side exit — which
        # would put a closure hop on the hot path — the taken edge
        # skips the inner region natively: ``if pred: sk += c`` /
        # ``else: <inner items>``.  ``sk`` counts skipped instructions
        # at runtime so every retire account (``ns + k``), the fault
        # hook and the loop backedge report the path-exact count.
        # Guards must nest properly; a crossing branch is demoted to a
        # plain side exit.
        guards = {}
        if chain_on:
            rindex = {a: i for i, (a, _, _) in enumerate(items)}
            gstack = []
            for gk, (ga, gi, gl) in enumerate(items[:-1]):
                while gstack and gstack[-1] <= gk:
                    gstack.pop()
                if gi.op in _CMP_PRED:
                    gj = rindex.get((ga + gl + gi.operands[0]) & M)
                    if gj is not None and gj > gk + 1 and \
                            (not gstack or gj <= gstack[-1]):
                        guards[gk] = gj
                        gstack.append(gj)
        sk_s = " - sk" if guards else ""

        dead_setters, kill_local, trailing = (set(), False, None) \
            if not chain_on else _flag_plan(items)
        block.kill_clean = kill_local and (
            self.flag_kill is None or start in self.flag_kill)
        # Trailing deferral only for single-exit blocks: a direct JMP
        # elsewhere, or a truncated fall-through.  (Jcc/CALL/indirect
        # terminators never qualify in _flag_plan.)
        if is_loop:
            trailing = None
        if trailing is not None and any(
                gk < trailing < gj for gk, gj in guards.items()):
            # The trailing setter sits inside a guard region: the taken
            # path reaches the exits without executing it, so deferring
            # its materialization would fabricate flags that path never
            # produced.
            trailing = None
        deferred = []
        if trailing is not None:
            t_instr = items[trailing][1]
        self.elided_flags += len(dead_setters) + \
            (1 if trailing is not None else 0)

        # -- register localization -----------------------------------------
        # Registers mentioned twice or more live in Python locals for
        # the whole closure (loads/stores to the regs list collapse to
        # local variable traffic); every exit point writes them back,
        # and the exception hook's first-wins return value tells the
        # innermost frame to flush before the dispatch loop reads regs.
        if chain_on:
            counts = _reg_counts(items)
            floor = 1 if is_loop else 2
            localized = sorted(r for r, c in counts.items()
                               if c >= floor)
        else:
            localized = []
        lset = frozenset(localized)
        if is_loop:
            self.hoisted += len(localized)

        def L(reg) -> str:
            """Lvalue/rvalue expression for a register."""
            return f"r{reg}" if reg in lset else f"regs[{reg}]"

        if trailing is not None:
            t_ops = t_instr.operands
            if t_instr.op == Op.CMP_RR:
                deferred = [f"fa = {L(t_ops[0])}",
                            f"fb = {L(t_ops[1])}", "fk = 1"]
            elif t_instr.op == Op.CMP_RI:
                deferred = [f"fa = {L(t_ops[0])}",
                            f"fb = {lit(t_ops[1] & M)}", "fk = 1"]
            else:  # TEST_RR
                deferred = [f"fa = {L(t_ops[0])} & {L(t_ops[1])}",
                            "fk = 2"]

        flush_regs = [f"regs[{r}] = r{r}" for r in localized]

        # -- deferred cycle accounting -------------------------------------
        # Float addition is non-associative, so the account must apply
        # the per-instruction costs in retirement order — but between
        # two *observable* points the intermediate sums are invisible,
        # so tier 2 accumulates cost expressions in ``pending`` and
        # emits one left-associated ``cycles = cycles + a + b + ...``
        # statement per flush point (block exits and fault-capable
        # sites), which performs the identical float-op sequence.
        # Memory fast paths cannot fault, so even the hot/EPC
        # adjustment defers: it rides along as a conditional expression
        # on the (still-live) per-site address variable, and the
        # not-hot arm adds ``0.0`` — a bit-exact identity.  For faults
        # raised from slow paths, the ``except`` hook replays the
        # pending sum recorded for the faulting site (``snaps``), so
        # the reported account matches the unchained engines exactly.
        pending = []
        snaps = []

        def cyc(cost) -> None:
            if chain_on:
                pending.append(lit(cost))
            else:
                emit(f"cycles += {cost!r}")

        def snap(site) -> None:
            """Record the pending sum live at a fault site; the except
            handler replays it keyed on ``i_``."""
            if pending:
                snaps.append((site, " + ".join(pending)))

        def flush_cyc() -> None:
            if pending:
                emit("cycles = cycles + " + " + ".join(pending))
                del pending[:]

        def exit_seq(tail) -> list:
            """Writeback sequence ending in ``tail`` (a return or a
            chained call)."""
            out = []
            if pending:
                out.append("cycles = cycles + " + " + ".join(pending))
                del pending[:]
            out += flush_regs
            out.append(tail)
            return out

        def peek_exit(tail) -> list:
            """Like :func:`exit_seq` but for a *conditional* early exit
            (SMC abort): the main path falls through and flushes later,
            so the compile-time pending state is left intact."""
            out = []
            if pending:
                out.append("cycles = cycles + " + " + ".join(pending))
            out += flush_regs
            out.append(tail)
            return out

        def mem_adjust(cost, av) -> None:
            """Tier-2 deferred hot/EPC cost adjustment for the memory
            op whose effective address lives in ``av``."""
            if hot_on:
                d = lit(cm.hot_mem_cost - cost)
                if epc_on:
                    pending.append(
                        f"({d} if {lit(hot_lo)} <= {av} < {lit(hot_hi)}"
                        f" else epc_touch({av}))")
                else:
                    pending.append(
                        f"({d} if {lit(hot_lo)} <= {av} < {lit(hot_hi)}"
                        f" else 0.0)")
            elif epc_on:
                pending.append(f"epc_touch({av})")

        def mem_adjust_const(cost, addr) -> None:
            """:func:`mem_adjust` for a compile-time-constant address:
            the hot-range test folds to the literal it would have
            produced.  The cold-unpaged case appends nothing — adding
            its 0.0 is exact for the non-negative cycle account, so
            dropping the term is bit-invisible."""
            if hot_on and hot_lo <= addr < hot_hi:
                pending.append(lit(cm.hot_mem_cost - cost))
            elif epc_on:
                pending.append(f"epc_touch({lit(addr)})")

        #: Outbound chain sites: (cell, target, needs_kill).
        edges = []
        cells = {}

        def chain_cell(target, needs_kill) -> str:
            name = f"c{len(cells)}"
            cell = [None, 0]
            cells[name] = cell
            edges.append((cell, target, needs_kill))
            return name

        def ic_cell() -> str:
            name = f"i{len(cells)}"
            cells[name] = [-1, None, 0, 0]
            return name

        def ret(rip_expr, kind=0, aux="0", nexec=n) -> str:
            return (f"return {rip_expr}, fk, fa, fb, cycles, "
                    f"{kind}, {aux}, ns + {nexec}{sk_s}")

        def emit_seq(lines, indent="") -> None:
            for ln in lines:
                emit(indent + ln)

        def emit_exit(target, nexec=n, defer=True, indent="") -> None:
            """Terminator exit to a fixed address: try the chain cell,
            fall back to the dispatch loop (materializing a deferred
            trailing setter on the way out)."""
            lines = deferred if defer else ()
            flush_cyc()
            if chain_on:
                name = chain_cell(target, bool(lines))
                emit(indent + f"cf = {name}[0]")
                emit(indent + f"if cf is not None and cd and "
                     f"ns + {nexec}{sk_s} + {name}[1] <= hd:")
                emit(indent + "    cs[1] += 1")
                emit_seq(flush_regs, indent + "    ")
                emit(indent + f"    return cf(regs, fk, fa, fb, "
                     f"cycles, hd, ns + {nexec}{sk_s}, cd - 1)")
            emit_seq(lines, indent)
            emit_seq(flush_regs, indent)
            emit(indent + ret(lit(target), nexec=nexec))

        def emit_side_exit(target, nexec) -> None:
            """Taken edge of a mid-trace Jcc (tail duplication): a
            conditional exit after ``nexec`` retires.  The main path
            falls through, so pending cycles are *peeked* — emitted on
            the exit path but kept accumulating at compile time — and
            no trailing-setter deferral can be in play (a mid-trace
            branch observes flags, which vetoes deferral)."""
            ind = "    "
            if pending:
                emit(ind + "cycles = cycles + " + " + ".join(pending))
            name = chain_cell(target, False)
            emit(ind + f"cf = {name}[0]")
            emit(ind + f"if cf is not None and cd and "
                 f"ns + {nexec}{sk_s} + {name}[1] <= hd:")
            emit(ind + "    cs[1] += 1")
            emit_seq(flush_regs, ind + "    ")
            emit(ind + f"    return cf(regs, fk, fa, fb, "
                 f"cycles, hd, ns + {nexec}{sk_s}, cd - 1)")
            emit_seq(flush_regs, ind)
            emit(ind + ret(lit(target), nexec=nexec))

        def emit_indirect(expr, guarded, nexec=n) -> None:
            """Indirect exit: monomorphic inline cache on the resolved
            target, recording misses for the dispatch loop to fill
            (unless the site went megamorphic and was poisoned)."""
            flush_cyc()
            if not chain_on:
                emit(ret(expr, nexec=nexec))
                return
            name = ic_cell()
            emit(f"t = {expr}")
            emit(f"if t == {name}[0]:")
            emit(f"    cf = {name}[1]")
            emit(f"    if cf is not None and cd and "
                 f"ns + {nexec}{sk_s} + {name}[2] <= hd:")
            emit("        cs[0] += 1")
            emit_seq(flush_regs, "        ")
            emit(f"        return cf(regs, fk, fa, fb, cycles, "
                 f"hd, ns + {nexec}{sk_s}, cd - 1)")
            emit(f"elif {name}[0] != -2:")
            emit(f"    cache.ic_miss = ({name}, t, {int(guarded)})")
            if not guarded:
                # Megamorphic fallback: a poisoned site (a RET shared
                # by many call sites) probes the cache-maintained
                # target table instead of bailing to dispatch on every
                # execution.  Unguarded sites only — guarded ones must
                # keep the trusted-target gate in fill_ic.
                emit("else:")
                emit("    e_ = fmap.get(t)")
                emit(f"    if e_ is not None and cd and "
                     f"ns + {nexec}{sk_s} + e_[1] <= hd:")
                emit("        cs[0] += 1")
                emit_seq(flush_regs, "        ")
                emit(f"        return e_[0](regs, fk, fa, fb, cycles, "
                     f"hd, ns + {nexec}{sk_s}, cd - 1)")
            emit_seq(flush_regs)
            emit(ret("t", nexec=nexec))

        def addr_of(mem) -> str:
            parts = []
            if mem.base is not None:
                parts.append(L(mem.base))
            if mem.index is not None:
                parts.append(L(mem.index) if mem.scale == 1
                             else f"{L(mem.index)} * {mem.scale}")
            if not parts:
                return lit(mem.disp & M)
            if mem.disp:
                parts.append(lit(mem.disp))
            if len(parts) == 1:
                return f"{parts[0]} & {MM}"
            return "(" + " + ".join(parts) + f") & {MM}"

        #: Trace-local constant registers (reg -> masked value): seeded
        #: by MOV_RI, propagated by MOV_RR/LEA, killed by any other
        #: write.  Lets fixed-address traffic — MiniC globals and the
        #: annotations' SSA-marker slots are the bulk of it — fold the
        #: effective address, the bounds/alignment triage and the
        #: hot-range cost test at compile time.  Facts never cross a
        #: native-loop backedge (emission is one linear pass starting
        #: from an empty map) and guard joins keep only facts the taken
        #: path agrees on.  Values flow through the pooled-literal
        #: table, so template sharing survives the folding.
        const = {}

        def addr_val(mem):
            """Compile-time effective address of ``mem``, or None."""
            total = mem.disp
            if mem.base is not None:
                v = const.get(mem.base)
                if v is None:
                    return None
                total += v
            if mem.index is not None:
                v = const.get(mem.index)
                if v is None:
                    return None
                total += v * mem.scale
            return total & M

        def mem_cost(cost) -> None:
            # Tier-1 only — tier 2 defers through mem_adjust.  Same
            # order as the step engine: the hot/EPC adjustment is added
            # *before* the access, so a faulting access leaves it in
            # the account.
            if hot_on:
                emit(f"if {lit(hot_lo)} <= a < {lit(hot_hi)}:")
                emit(f"    cycles += {lit(cm.hot_mem_cost - cost)}")
                if epc_on:
                    emit("else:")
                    emit("    cycles += epc_touch(a)")
            elif epc_on:
                emit("cycles += epc_touch(a)")

        # Specialized memory access: an in-enclave bounds + page-perm
        # fast path straight against the backing bytearray, with the
        # fully checked AddressSpace call as the fallback for faults,
        # untrusted memory, ELRANGE straddles and watched-code stores
        # (the fallback preserves exact legacy fault/versioning
        # semantics; the fast path is only taken when no check could
        # fire).  Base, size, perms and the code-watch range are baked
        # at translation time — an invalidation-triggering store never
        # takes the fast path, so re-translation picks up new code.
        # In tier 2 the fast path also carries no fault bookkeeping:
        # ``i_`` and the SMC abort poll live in the slow branch, which
        # is the only place they can matter.
        space = cpu.space
        ebase = space.enclave_base
        esize = space.enclave_size
        wlo, whi = space._code_watch
        EB = lit(ebase)
        E8 = lit(esize - 8)
        E1 = lit(esize)
        # Dirty-page tracking (checkpoint support) is baked at compile
        # time: fast-path stores bypass AddressSpace.store, so when
        # tracking is on they record the touched page themselves — one
        # set.add on the offset the store already computed.  The
        # fallback path (store_u64/store_u8) marks inside AddressSpace.
        dirty_on = space.dirty_tracking

        # Tier 2 on a little-endian host leans on the AddressSpace's
        # in-place-maintained per-page masks (``_rpage``/``_wpage``) and
        # its native-order u64 lane: one byte index replaces the two
        # page-perm lookups (aligned accesses cannot straddle a 4 KiB
        # page) and ``mq[o >> 3]`` replaces the struct call.  ``_wpage``
        # is already 0 on watched-code pages, so fast-path stores skip
        # the SMC compare too.  Sound to bake because permissions are
        # sealed at EINIT and the masks are mutated in place.
        fastmem = chain_on and _LITTLE

        def emit_load64(dst, var="a", site=None):
            emit(f"o = {var} - {EB}")
            if fastmem and site is not None:
                emit(f"if not o & 7 and 0 <= o <= {E8}"
                     f" and rpg[o >> 12]:")
                emit(f"    {dst} = mq[o >> 3]")
            else:
                emit(f"if 0 <= o <= {E8} and perms[o >> 12] & 1"
                     f" and perms[(o + 7) >> 12] & 1:")
                emit(f"    {dst} = upk_q(smem, o)[0]")
            emit("else:")
            if site is not None:
                emit(f"    i_ = {site}")
                snap(site)
            emit(f"    {dst} = load_u64({var})")

        def emit_store64(value, var="a", site=None, abort_exit=None):
            # ``value`` must already be masked to 64 bits.
            emit(f"o = {var} - {EB}")
            if fastmem and site is not None:
                emit(f"if not o & 7 and 0 <= o <= {E8}"
                     f" and wpg[o >> 12]:")
                emit(f"    mq[o >> 3] = {value}")
                if dirty_on:
                    emit("    dirty_add(o >> 12)")
            else:
                cond = (f"0 <= o <= {E8} and perms[o >> 12] & 2"
                        f" and perms[(o + 7) >> 12] & 2")
                if whi > wlo:
                    cond += (f" and ({var} >= {lit(whi)}"
                             f" or {var} + 8 <= {lit(wlo)})")
                emit(f"if {cond}:")
                emit(f"    pck_q(smem, o, {value})")
                if dirty_on:
                    emit("    dirty_add(o >> 12)")
                    emit("    dirty_add((o + 7) >> 12)")
            emit("else:")
            if site is not None:
                emit(f"    i_ = {site}")
                snap(site)
            emit(f"    store_u64({var}, {value})")
            if abort_exit is not None:
                # Only a watched-range store can invalidate code, and
                # those always take the slow path — the poll lives
                # here so the fast path pays nothing.
                emit("    if cache.abort:")
                emit("        cache.abort = False")
                emit_seq(abort_exit, "        ")

        def emit_load8(dst, var="a", site=None):
            emit(f"o = {var} - {EB}")
            if fastmem and site is not None:
                emit(f"if 0 <= o < {E1} and rpg[o >> 12]:")
            else:
                emit(f"if 0 <= o < {E1} and perms[o >> 12] & 1:")
            emit(f"    {dst} = smem[o]")
            emit("else:")
            if site is not None:
                emit(f"    i_ = {site}")
                snap(site)
            emit(f"    {dst} = load_u8({var})")

        def emit_store8(value, var="a", site=None, abort_exit=None):
            # ``value`` must already be masked to 8 bits.
            emit(f"o = {var} - {EB}")
            if fastmem and site is not None:
                # ``_wpage`` is page-granular, so a byte store to an
                # unwatched corner of a watched page falls through to
                # the slow path — slower, never wrong.
                emit(f"if 0 <= o < {E1} and wpg[o >> 12]:")
            else:
                cond = f"0 <= o < {E1} and perms[o >> 12] & 2"
                if whi > wlo:
                    cond += f" and not {lit(wlo)} <= {var} < {lit(whi)}"
                emit(f"if {cond}:")
            emit(f"    smem[o] = {value}")
            if dirty_on:
                emit("    dirty_add(o >> 12)")
            emit("else:")
            if site is not None:
                emit(f"    i_ = {site}")
                snap(site)
            emit(f"    store_u8({var}, {value})")
            if abort_exit is not None:
                emit("    if cache.abort:")
                emit("        cache.abort = False")
                emit_seq(abort_exit, "        ")

        # Constant-address variants: the bounds/alignment triage of the
        # dynamic fast path is decided at compile time, leaving one
        # page-mask probe (which must stay: EPC residency and SMC
        # watching mutate the masks at run time).  Misaligned,
        # straddling or out-of-enclave constants go straight to the
        # checked slow path — the same arm the dynamic code would take
        # on every execution.

        def emit_load64_const(dst, addr, site):
            o = addr - ebase
            if 0 <= o <= esize - 8 and not o & 7:
                emit(f"if rpg[{lit(o >> 12)}]:")
                emit(f"    {dst} = mq[{lit(o >> 3)}]")
                emit("else:")
                emit(f"    i_ = {site}")
                snap(site)
                emit(f"    {dst} = load_u64({lit(addr)})")
            else:
                emit(f"i_ = {site}")
                snap(site)
                emit(f"{dst} = load_u64({lit(addr)})")

        def emit_load8_const(dst, addr, site):
            o = addr - ebase
            if 0 <= o < esize:
                emit(f"if rpg[{lit(o >> 12)}]:")
                emit(f"    {dst} = smem[{lit(o)}]")
                emit("else:")
                emit(f"    i_ = {site}")
                snap(site)
                emit(f"    {dst} = load_u8({lit(addr)})")
            else:
                emit(f"i_ = {site}")
                snap(site)
                emit(f"{dst} = load_u8({lit(addr)})")

        def emit_store64_const(value, addr, site, abort_exit=None):
            # ``value`` must already be masked to 64 bits.
            o = addr - ebase
            ind = ""
            if 0 <= o <= esize - 8 and not o & 7:
                emit(f"if wpg[{lit(o >> 12)}]:")
                emit(f"    mq[{lit(o >> 3)}] = {value}")
                if dirty_on:
                    emit(f"    dirty_add({lit(o >> 12)})")
                emit("else:")
                ind = "    "
            emit(f"{ind}i_ = {site}")
            snap(site)
            emit(f"{ind}store_u64({lit(addr)}, {value})")
            if abort_exit is not None:
                emit(f"{ind}if cache.abort:")
                emit(f"{ind}    cache.abort = False")
                emit_seq(abort_exit, ind + "    ")

        def emit_store8_const(value, addr, site, abort_exit=None):
            # ``value`` must already be masked to 8 bits.
            o = addr - ebase
            ind = ""
            if 0 <= o < esize:
                emit(f"if wpg[{lit(o >> 12)}]:")
                emit(f"    smem[{lit(o)}] = {value}")
                if dirty_on:
                    emit(f"    dirty_add({lit(o >> 12)})")
                emit("else:")
                ind = "    "
            emit(f"{ind}i_ = {site}")
            snap(site)
            emit(f"{ind}store_u8({lit(addr)}, {value})")
            if abort_exit is not None:
                emit(f"{ind}if cache.abort:")
                emit(f"{ind}    cache.abort = False")
                emit_seq(abort_exit, ind + "    ")

        #: Open guard regions: (join index, flag knowledge at branch).
        open_regions = []

        for k, (rip, instr, length) in enumerate(items):
            # Close every guard region joining at this item: flush the
            # inner path's pending cycles at the inner indent, then
            # merge compile-time flag knowledge (the taken path arrives
            # with the branch-time kind, the inner path with whatever
            # its setters left — only agreement survives the join).
            while open_regions and open_regions[-1][0] == k:
                _, known_at_branch, const_at_branch = open_regions.pop()
                flush_cyc()
                cur_ind[0] = cur_ind[0][:-4]
                if known != known_at_branch:
                    known = 0
                # Constant facts survive the join only when both the
                # taken (branch-time snapshot) and fall-through paths
                # agree on the value.
                for r in [r for r, v in const.items()
                          if const_at_branch.get(r) != v]:
                    del const[r]
            op = instr.op
            ops = instr.operands
            cost = cm.cost_of(op)
            next_rip = (rip + length) & M
            last = k == n - 1

            def abort_check():
                # Tier-1 only: poll the SMC flag after every store.  On
                # a terminator the normal return follows immediately,
                # so just clear.
                emit("if cache.abort:")
                emit("    cache.abort = False")
                if not last:
                    emit_seq(exit_seq(ret(lit(next_rip),
                                          nexec=k + 1)), "    ")

            def store_abort():
                # Tier-2 slow-branch abort exit lines.
                if last:
                    return []
                return peek_exit(ret(lit(next_rip), nexec=k + 1))

            if op == Op.MOV_RM or op == Op.LDB:
                cyc(cost)
                if chain_on:
                    cv = addr_val(ops[1]) if fastmem else None
                    if cv is not None:
                        mem_adjust_const(cost, cv)
                        if op == Op.MOV_RM:
                            emit_load64_const(L(ops[0]), cv, k)
                        else:
                            emit_load8_const(L(ops[0]), cv, k)
                    else:
                        av = f"a{k}"
                        emit(f"{av} = {addr_of(ops[1])}")
                        mem_adjust(cost, av)
                        if op == Op.MOV_RM:
                            emit_load64(L(ops[0]), var=av, site=k)
                        else:
                            emit_load8(L(ops[0]), var=av, site=k)
                else:
                    emit(f"i_ = {k}")
                    emit(f"a = {addr_of(ops[1])}")
                    mem_cost(cost)
                    if op == Op.MOV_RM:
                        emit_load64(L(ops[0]))
                    else:
                        emit_load8(L(ops[0]))
            elif op == Op.MOV_MR or op == Op.STB:
                cyc(cost)
                src = (f"{L(ops[1])} & {MM}" if op == Op.MOV_MR
                       else f"{L(ops[1])} & 255")
                if chain_on:
                    cv = addr_val(ops[0]) if fastmem else None
                    if cv is not None:
                        mem_adjust_const(cost, cv)
                        if op == Op.MOV_MR:
                            emit_store64_const(src, cv, k,
                                               abort_exit=store_abort())
                        else:
                            emit_store8_const(src, cv, k,
                                              abort_exit=store_abort())
                    else:
                        av = f"a{k}"
                        emit(f"{av} = {addr_of(ops[0])}")
                        mem_adjust(cost, av)
                        if op == Op.MOV_MR:
                            emit_store64(src, var=av, site=k,
                                         abort_exit=store_abort())
                        else:
                            emit_store8(src, var=av, site=k,
                                        abort_exit=store_abort())
                else:
                    emit(f"i_ = {k}")
                    emit(f"a = {addr_of(ops[0])}")
                    mem_cost(cost)
                    if op == Op.MOV_MR:
                        emit_store64(src)
                    else:
                        emit_store8(src)
                    abort_check()
            elif op == Op.MOV_MI:
                cyc(cost)
                if chain_on:
                    cv = addr_val(ops[0]) if fastmem else None
                    if cv is not None:
                        mem_adjust_const(cost, cv)
                        emit_store64_const(lit(ops[1] & M), cv, k,
                                           abort_exit=store_abort())
                    else:
                        av = f"a{k}"
                        emit(f"{av} = {addr_of(ops[0])}")
                        mem_adjust(cost, av)
                        emit_store64(lit(ops[1] & M), var=av, site=k,
                                     abort_exit=store_abort())
                else:
                    emit(f"i_ = {k}")
                    emit(f"a = {addr_of(ops[0])}")
                    mem_cost(cost)
                    emit_store64(lit(ops[1] & M))
                    abort_check()
            elif op == Op.MOV_RR:
                cyc(cost)
                emit(f"{L(ops[0])} = {L(ops[1])}")
            elif op == Op.MOV_RI:
                cyc(cost)
                emit(f"{L(ops[0])} = {lit(ops[1])}")
            elif op == Op.LEA:
                cyc(cost)
                cv = addr_val(ops[1]) if chain_on else None
                if cv is not None:
                    emit(f"{L(ops[0])} = {lit(cv)}")
                else:
                    emit(f"{L(ops[0])} = {addr_of(ops[1])}")
            elif op in _ALU_RR:
                cyc(cost)
                emit(_ALU_RR[op].format(d=L(ops[0]), s=L(ops[1]),
                                        m=MM, sg=SG))
            elif op == Op.ADD_RI:
                cyc(cost)
                emit(f"{L(ops[0])} = ({L(ops[0])}"
                     f" + {lit(ops[1])}) & {MM}")
            elif op == Op.SUB_RI:
                cyc(cost)
                emit(f"{L(ops[0])} = ({L(ops[0])}"
                     f" - {lit(ops[1])}) & {MM}")
            elif op == Op.IMUL_RI:
                cyc(cost)
                emit(f"{L(ops[0])} = ((({L(ops[0])} ^ {SG}) - {SG})"
                     f" * {lit(ops[1])}) & {MM}")
            elif op == Op.AND_RI:
                cyc(cost)
                emit(f"{L(ops[0])} &= {lit(ops[1] & M)}")
            elif op == Op.OR_RI:
                cyc(cost)
                emit(f"{L(ops[0])} |= {lit(ops[1] & M)}")
            elif op == Op.XOR_RI:
                cyc(cost)
                emit(f"{L(ops[0])} ^= {lit(ops[1] & M)}")
            elif op == Op.SHL_RI:
                cyc(cost)
                emit(f"{L(ops[0])} = ({L(ops[0])}"
                     f" << {lit(ops[1] & 63)}) & {MM}")
            elif op == Op.SHR_RI:
                cyc(cost)
                emit(f"{L(ops[0])} >>= {lit(ops[1] & 63)}")
            elif op == Op.SAR_RI:
                cyc(cost)
                emit(f"{L(ops[0])} = ((({L(ops[0])} ^ {SG}) - {SG})"
                     f" >> {lit(ops[1] & 63)}) & {MM}")
            elif op == Op.NEG:
                cyc(cost)
                emit(f"{L(ops[0])} = -{L(ops[0])} & {MM}")
            elif op == Op.NOT:
                cyc(cost)
                emit(f"{L(ops[0])} = ~{L(ops[0])} & {MM}")
            elif op in (Op.DIV_RR, Op.DIV_RI, Op.MOD_RR, Op.MOD_RI):
                cyc(cost)
                if not chain_on:
                    emit(f"i_ = {k}")
                emit(f"t = ({L(ops[0])} ^ {SG}) - {SG}")
                if op in (Op.DIV_RR, Op.MOD_RR):
                    emit(f"u = ({L(ops[1])} ^ {SG}) - {SG}")
                else:
                    emit(f"u = {lit(ops[1])}")
                if not chain_on or op in (Op.DIV_RR, Op.MOD_RR) \
                        or ops[1] == 0:
                    emit("if u == 0:")
                    msg = lit(f"division by zero at {rip:#x}")
                    if chain_on:
                        emit(f"    i_ = {k}")
                        snap(k)
                    emit(f"    raise CpuFault({msg})")
                if chain_on:
                    # Truncating signed division without two abs()
                    # calls: like-signed operands floor-divide
                    # directly; unlike-signed negate the divisor, so
                    # the floor of the positive ratio is the
                    # truncation of the negative one.
                    emit("if (t < 0) == (u < 0):")
                    emit("    q = t // u")
                    emit("else:")
                    emit("    q = -(t // -u)")
                else:
                    emit("q = abs(t) // abs(u)")
                    emit("if (t < 0) != (u < 0):")
                    emit("    q = -q")
                if op in (Op.DIV_RR, Op.DIV_RI):
                    emit(f"{L(ops[0])} = q & {MM}")
                else:
                    emit(f"{L(ops[0])} = (t - q * u) & {MM}")
            elif op == Op.CMP_RR:
                cyc(cost)
                if k in dead_setters or k == trailing:
                    continue
                emit(f"fa = {L(ops[0])}")
                emit(f"fb = {L(ops[1])}")
                emit("fk = 1")
                known = 1
            elif op == Op.CMP_RI:
                # fb holds imm & U64: both the unsigned compare and the
                # sign-flip signed compare recover the legacy result
                # because |imm| < 2**63.
                cyc(cost)
                if k in dead_setters or k == trailing:
                    continue
                emit(f"fa = {L(ops[0])}")
                emit(f"fb = {lit(ops[1] & M)}")
                emit("fk = 1")
                known = 1
            elif op == Op.TEST_RR:
                cyc(cost)
                if k in dead_setters or k == trailing:
                    continue
                emit(f"fa = {L(ops[0])} & {L(ops[1])}")
                emit("fk = 2")
                known = 2
            elif op == Op.JMP:
                cyc(cost)
                target = (rip + length + ops[0]) & M
                if not last and items[k + 1][0] == target:
                    # Mid-trace JMP: the next item *is* the target
                    # (translate() fused through it) — the jump retires
                    # and is charged but transfers no control.
                    pass
                elif is_loop and last and target == start:
                    flush_cyc()
                    emit(f"if ns + {2 * n} <= hd:")
                    emit(f"    ns += {n}{sk_s}")
                    if guards:
                        emit("    sk = 0")
                    emit("    continue")
                    emit_seq(exit_seq(ret(lit(start))))
                else:
                    emit_exit(target)
            elif op == Op.JMP_R:
                cyc(cost)
                emit_indirect(f"{L(ops[0])} & {MM}", guarded=True)
            elif op in _CMP_PRED:  # the ten Jcc opcodes
                cyc(cost)
                if known == 1:
                    pred = _CMP_PRED[op].format(sg=SG)
                elif known == 2:
                    pred = _TEST_PRED[op].format(sg=SG)
                elif chain_on:
                    # Entry flags, kind unknown: inline three-way
                    # dispatch on the kind tag instead of a call.
                    pred = (f"({_CMP_PRED[op].format(sg=SG)})"
                            f" if fk == 1 else "
                            f"(({_TEST_PRED[op].format(sg=SG)})"
                            f" if fk == 2 else "
                            f"({_CONC_PRED[op]}))")
                else:
                    pred = f"jcc({op}, fk, fa, fb)"
                target = (rip + length + ops[0]) & M
                if not last and items[k + 1][0] == next_rip:
                    if k in guards:
                        # Internal forward guard: the taken edge skips
                        # the inner region natively.  Both paths have
                        # paid the Jcc cost, so flush before diverging;
                        # the inner arm re-accumulates from empty.
                        j = guards[k]
                        flush_cyc()
                        emit(f"if {pred}:")
                        emit(f"    sk += {j - k - 1}")
                        emit("else:")
                        open_regions.append((j, known, dict(const)))
                        cur_ind[0] += "    "
                    elif target == next_rip:
                        # Degenerate jump-to-next: retires and is
                        # charged, transfers nothing either way.
                        pass
                    else:
                        # Tail duplication past the fall-through: the
                        # taken edge is a side exit.
                        emit(f"if {pred}:")
                        emit_side_exit(target, k + 1)
                    continue
                flush_cyc()
                emit(f"if {pred}:")
                if is_loop and last and not loop_fall \
                        and target == start:
                    emit(f"    if ns + {2 * n} <= hd:")
                    emit(f"        ns += {n}{sk_s}")
                    if guards:
                        emit("        sk = 0")
                    emit("        continue")
                    emit_seq(exit_seq(ret(lit(start))), "    ")
                    emit_exit(next_rip)
                elif loop_fall and last:
                    # Taken edge leaves the loop; fall-through is the
                    # backedge to our own leader.
                    emit_exit(target, indent="    ")
                    emit(f"if ns + {2 * n} <= hd:")
                    emit(f"    ns += {n}{sk_s}")
                    if guards:
                        emit("    sk = 0")
                    emit("    continue")
                    emit_seq(exit_seq(ret(lit(start))))
                else:
                    emit_exit(target, indent="    ")
                    emit_exit(next_rip)
            elif op == Op.CALL or op == Op.CALL_R:
                cyc(cost)
                # translate() walked through this direct CALL into the
                # callee: the next item *is* the target, so the push
                # retires here and control simply falls through — no
                # transition.
                fused = (chain_on and op == Op.CALL and not last
                         and items[k + 1][0]
                         == (rip + length + ops[0]) & M)
                if chain_on and not epc_on:
                    emit(f"r = ({L(4)} - 8) & {MM}")
                    emit(f"{L(4)} = r")
                    emit_store64(lit(next_rip), var="r", site=k,
                                 abort_exit=store_abort())
                else:
                    # EPC-order fidelity: the legacy sequence captures
                    # the paging cost before the access but credits it
                    # after, so this arm flushes eagerly instead of
                    # snapshotting.
                    flush_cyc()
                    emit(f"i_ = {k}")
                    emit(f"r = ({L(4)} - 8) & {MM}")
                    emit(f"{L(4)} = r")
                    if epc_on:
                        emit("d = epc_touch(r)")
                    emit_store64(lit(next_rip), var="r")
                    if epc_on:
                        emit("cycles += d")
                    abort_check()
                if fused:
                    pass
                elif op == Op.CALL:
                    emit_exit((rip + length + ops[0]) & M)
                else:
                    emit_indirect(f"{L(ops[0])} & {MM}", guarded=True)
            elif op == Op.RET:
                cyc(cost)
                # Mid-trace RET: translate() predicted the return
                # address with its compile-time return-address stack
                # and kept tracing at the prediction (the next item).
                # Verify the popped value against it and fall through
                # on a hit; a mismatch (retargeted stack) bails to the
                # actual target with ``k + 1`` items retired.
                fused = chain_on and not last
                if chain_on and not epc_on:
                    emit(f"r = {L(4)}")
                    emit_load64("v", var="r", site=k)
                    emit(f"{L(4)} = (r + 8) & {MM}")
                else:
                    # EPC-order fidelity: the legacy sequence captures
                    # the paging cost before the access but credits it
                    # after, so this arm flushes eagerly instead of
                    # snapshotting.
                    flush_cyc()
                    emit(f"i_ = {k}")
                    emit(f"r = {L(4)}")
                    if epc_on:
                        emit("d = epc_touch(r)")
                    emit_load64("v", var="r")
                    emit(f"{L(4)} = (r + 8) & {MM}")
                    if epc_on:
                        emit("cycles += d")
                if fused:
                    emit(f"if v != {lit(items[k + 1][0])}:")
                    emit_seq(peek_exit(ret("v", nexec=k + 1)), "    ")
                else:
                    emit_indirect("v", guarded=False)
            elif op == Op.PUSH_R or op == Op.PUSH_I:
                value = (f"{L(ops[0])} & {MM}" if op == Op.PUSH_R
                         else lit(ops[0] & M))
                cyc(cost)
                if chain_on and not epc_on:
                    emit(f"r = ({L(4)} - 8) & {MM}")
                    emit(f"{L(4)} = r")
                    emit_store64(value, var="r", site=k,
                                 abort_exit=store_abort())
                else:
                    # EPC-order fidelity: the legacy sequence captures
                    # the paging cost before the access but credits it
                    # after, so this arm flushes eagerly instead of
                    # snapshotting.
                    flush_cyc()
                    emit(f"i_ = {k}")
                    emit(f"r = ({L(4)} - 8) & {MM}")
                    emit(f"{L(4)} = r")
                    if epc_on:
                        emit("d = epc_touch(r)")
                    emit_store64(value, var="r")
                    if epc_on:
                        emit("cycles += d")
                    abort_check()
            elif op == Op.POP_R:
                cyc(cost)
                if chain_on and not epc_on:
                    emit(f"r = {L(4)}")
                    emit_load64("v", var="r", site=k)
                    emit(f"{L(4)} = (r + 8) & {MM}")
                    emit(f"{L(ops[0])} = v")
                else:
                    # EPC-order fidelity: the legacy sequence captures
                    # the paging cost before the access but credits it
                    # after, so this arm flushes eagerly instead of
                    # snapshotting.
                    flush_cyc()
                    emit(f"i_ = {k}")
                    emit(f"r = {L(4)}")
                    if epc_on:
                        emit("d = epc_touch(r)")
                    emit_load64("v", var="r")
                    emit(f"{L(4)} = (r + 8) & {MM}")
                    emit(f"{L(ops[0])} = v")
                    if epc_on:
                        emit("cycles += d")
            elif op == Op.SVC:
                cyc(cost)
                emit(f"cache.svc_rip = {lit(rip)}")
                emit_seq(exit_seq(ret(lit(next_rip), kind=1,
                                      aux=lit(ops[0]))))
            elif op == Op.NOP:
                cyc(cost)
            elif op == Op.HLT:
                cyc(cost)
                emit_seq(exit_seq(ret(lit(next_rip), kind=2)))
            elif op == Op.TRAP:
                cyc(cost)
                emit(f"i_ = {k}")
                if chain_on:
                    snap(k)
                else:
                    flush_cyc()
                emit(f"raise PolicyViolation({lit(ops[0])},"
                     f" {lit(rip)})")
            else:  # pragma: no cover - _SUPPORTED pre-filter is total
                raise AssertionError(f"untranslatable opcode {op:#x}")

            # Constant-map bookkeeping.  Runs after each instruction's
            # emission so the *next* instruction sees its effect.  The
            # flag-only arms above ``continue`` early — they write no
            # register, so skipping this block is sound for them.
            if chain_on:
                if op == Op.MOV_RI:
                    const[ops[0]] = ops[1] & M
                elif op == Op.MOV_RR:
                    v = const.get(ops[1])
                    if v is None:
                        const.pop(ops[0], None)
                    else:
                        const[ops[0]] = v
                elif op == Op.LEA:
                    v = addr_val(ops[1])
                    if v is None:
                        const.pop(ops[0], None)
                    else:
                        const[ops[0]] = v
                elif op in _CONST_KILL0:
                    const.pop(ops[0], None)
                elif op in _CONST_STACK:
                    const.pop(4, None)
                    if op == Op.POP_R:
                        const.pop(ops[0], None)
                elif op not in _CONST_NEUTRAL:
                    const.clear()

        if items[-1][1].op not in BLOCK_TERMINATORS:
            # Truncated block (decode failure, exec-perm edge or length
            # cap): fall through to the next leader.
            emit_exit((items[-1][0] + items[-1][2]) & M)

        baked = ["load_u64", "store_u64", "load_u8", "store_u8",
                 "smem", "perms", "upk_q", "pck_q", "epc_touch",
                 "rpg", "wpg", "mq",
                 "cache", "fault", "jcc", "dirty_add", "blk", "cs",
                 "fmap"]
        baked += list(cells)
        baked += list(pool_vals)
        sig_lines = []
        for i in range(0, len(baked), 4):
            chunk = ", ".join(f"{x}={x}" for x in baked[i:i + 4])
            sig_lines.append("         " + chunk + ",")
        sig_lines[-1] = sig_lines[-1][:-1] + "):"
        lines = ["def _blk(regs, fk, fa, fb, cycles, hd, ns, cd,"]
        lines += sig_lines
        lines.append("    i_ = 0")
        if guards:
            lines.append("    sk = 0")
        lines.append("    try:")
        base = "        "
        for reg in localized:
            lines.append(base + f"r{reg} = regs[{reg}]")
        if is_loop:
            lines.append(base + "while 1:")
            base = "            "
        lines += [base + ln for ln in body]
        lines.append("    except BaseException:")
        # Replay the faulting site's pending cycle sum (exact for
        # architectural faults, which only originate at snapshotted
        # sites; an async exception elsewhere may attribute a few
        # instructions' cost approximately, as the step engine would
        # attribute a whole instruction).
        kw = "if"
        for site, expr in snaps:
            lines.append(f"        {kw} i_ == {site}:")
            lines.append(f"            cycles = cycles + {expr}")
            kw = "elif"
        if localized:
            lines.append(
                f"        if fault(blk, i_, ns{sk_s}, cycles,"
                f" fk, fa, fb):")
            for reg in localized:
                lines.append(f"            regs[{reg}] = r{reg}")
        else:
            lines.append(f"        fault(blk, i_, ns{sk_s}, cycles,"
                         " fk, fa, fb)")
        lines.append("        raise")
        src = "\n".join(lines) + "\n"
        from ..errors import CpuFault, PolicyViolation
        namespace = {
            "load_u64": space.load_u64,
            "store_u64": space.store_u64,
            "load_u8": space.load_u8,
            "store_u8": space.store_u8,
            "smem": space._mem,
            "perms": space._perms,
            "upk_q": _STRUCT_Q.unpack_from,
            "pck_q": _STRUCT_Q.pack_into,
            "rpg": space._rpage,
            "wpg": space._wpage,
            "mq": space._mem_q,
            "epc_touch": cpu._epc_touch,
            "cache": self,
            "dirty_add": space._dirty.add,
            "fault": cpu._set_closure_fault,
            "jcc": eval_jcc,
            "blk": block,
            "cs": self.cstat,
            "fmap": self.fmap,
            "CpuFault": CpuFault,
            "PolicyViolation": PolicyViolation,
        }
        namespace.update(cells)
        namespace.update(pool_vals)
        if chain_on:
            code = _CODE_CACHE.get(src)
            if code is None:
                code = compile(src, "<tblock>", "exec")
                if len(_CODE_CACHE) < _CODE_CACHE_CAP:
                    _CODE_CACHE[src] = code
            else:
                self.template_hits += 1
            exec(code, namespace)
        else:
            exec(compile(src, f"<block {start:#x}>", "exec"),
                 namespace)
        block.src = src
        return namespace["_blk"], (edges if chain_on else None)
