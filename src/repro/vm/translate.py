"""Superblock translator for the DX86 VM.

The single-step engine pays a dict lookup, an AEX countdown tick, a
code-version compare and a Python if/elif walk for *every* retired
instruction.  This module removes those per-instruction costs by fusing
each straight-line region (a *superblock*: leader up to and including
the first control transfer, ``SVC``, ``HLT`` or ``TRAP``) into one
specialized Python closure:

* operands, effective-address shapes, costs and branch targets are baked
  into the generated source as literals, so the closure is pure
  register-file arithmetic plus the load/store calls;
* flags are *lazy* — ``CMP``/``TEST`` record their operands and a kind
  tag instead of computing ``f_eq``/``f_lt_s``/``f_lt_u``; conditional
  branches test predicates on the recorded operands directly, and the
  three architectural booleans are materialized only at escape points
  (SVC, AEX, run exit) via :func:`materialize_flags`;
* cycle accounting is emitted as one ``cycles += <literal>`` per
  instruction *in legacy retirement order* — float addition is not
  associative, so batching per-block sums would diverge from the
  single-step engine's bit-exact account;
* self-modifying code is handled by an invalidation hook registered on
  the :class:`~repro.sgx.memory.AddressSpace`: a store into the watched
  code range drops every overlapping block from the cache, and if the
  *currently executing* block overlaps, sets :attr:`BlockCache.abort` —
  generated code checks the flag after each store and returns early with
  the exact count of retired instructions, so execution resumes through
  a freshly translated block.

The generated closure receives the hot state as positional arguments and
returns it, so the dispatch loop in ``CPU._run_translated`` keeps
everything in locals::

    (next_rip, fk, fa, fb, cycles,
     kind, aux, nexec) = block.fn(regs, fk, fa, fb, cycles)

``kind`` is 0 for a plain control transfer, 1 for an SVC escape (``aux``
is the service number), 2 for HLT.  ``nexec`` is how many instructions
actually retired (less than ``block.n`` only on an invalidation abort).
Faults raise through the closure; an ``except`` hook reports the
faulting instruction index and the in-flight accumulators to the CPU
(``CPU._set_closure_fault``) so the dispatch loop can reconstruct the
exact architectural fault state the single-step engine would leave.
"""

from __future__ import annotations

import struct
import weakref

from ..errors import EncodingError, MemoryFault
from ..isa.encoding import decode_block
from ..isa.instructions import BLOCK_TERMINATORS, Op

_U64 = (1 << 64) - 1
_SIGN = 1 << 63
_STRUCT_Q = struct.Struct("<Q")

#: Translation stops after this many instructions even without a
#: terminator (bounds both codegen time and the AEX fast-path window:
#: the translating executor only runs a block when the countdown
#: exceeds its length).
MAX_BLOCK_INSTRS = 64

#: Stub visits replayed through the single-step oracle before a block
#: is considered hot and fused (``Block.warm`` counts them).  Codegen
#: costs ~100x one oracle replay, so straight-through init code and
#: rarely-taken paths are never compiled.
COLD_RUNS = 12


# -- lazy flag state --------------------------------------------------------
#
# (fk, fa, fb) encodes the flag register symbolically:
#   fk == 0: concrete     — fa packs f_eq | f_lt_s << 1 | f_lt_u << 2
#   fk == 1: pending CMP  — fa, fb are the unsigned operand values
#   fk == 2: pending TEST — fa is the masked value (a & b)

def pack_flags(f_eq, f_lt_s, f_lt_u) -> int:
    """Pack the three architectural booleans into a concrete fa word."""
    return (1 if f_eq else 0) | (2 if f_lt_s else 0) | (4 if f_lt_u else 0)


def materialize_flags(fk, fa, fb):
    """Collapse a lazy flag state to ``(f_eq, f_lt_s, f_lt_u)``."""
    if fk == 0:
        return bool(fa & 1), bool(fa & 2), bool(fa & 4)
    if fk == 1:
        # Signed compare via sign-bit flip: a <s b  iff  a^S <u b^S.
        return fa == fb, (fa ^ _SIGN) < (fb ^ _SIGN), fa < fb
    return fa == 0, bool(fa & _SIGN), False


def eval_jcc(op, fk, fa, fb) -> bool:
    """Evaluate a conditional-jump predicate against a lazy flag state.

    Used by generated code only when the flag setter is *not* in the
    same block (flags flowing across a block boundary), so the kind tag
    is unknown at translation time."""
    f_eq, f_lt_s, f_lt_u = materialize_flags(fk, fa, fb)
    if op == Op.JE:
        return f_eq
    if op == Op.JNE:
        return not f_eq
    if op == Op.JL:
        return f_lt_s
    if op == Op.JLE:
        return f_lt_s or f_eq
    if op == Op.JG:
        return not (f_lt_s or f_eq)
    if op == Op.JGE:
        return not f_lt_s
    if op == Op.JB:
        return f_lt_u
    if op == Op.JBE:
        return f_lt_u or f_eq
    if op == Op.JA:
        return not (f_lt_u or f_eq)
    return not f_lt_u  # JAE


#: Jcc predicate source when the in-block setter was a CMP (fk == 1).
_CMP_PRED = {
    Op.JE: "fa == fb",
    Op.JNE: "fa != fb",
    Op.JB: "fa < fb",
    Op.JAE: "fa >= fb",
    Op.JBE: "fa <= fb",
    Op.JA: "fa > fb",
    Op.JL: f"fa ^ {_SIGN} < fb ^ {_SIGN}",
    Op.JGE: f"fa ^ {_SIGN} >= fb ^ {_SIGN}",
    Op.JLE: f"fa ^ {_SIGN} <= fb ^ {_SIGN}",
    Op.JG: f"fa ^ {_SIGN} > fb ^ {_SIGN}",
}

#: Jcc predicate source when the in-block setter was a TEST (fk == 2).
_TEST_PRED = {
    Op.JE: "fa == 0",
    Op.JNE: "fa != 0",
    Op.JL: f"fa & {_SIGN}",
    Op.JGE: f"not fa & {_SIGN}",
    Op.JLE: f"fa == 0 or fa & {_SIGN}",
    Op.JG: f"fa != 0 and not fa & {_SIGN}",
    Op.JB: "False",
    Op.JAE: "True",
    Op.JBE: "fa == 0",
    Op.JA: "fa != 0",
}

_ALU_RR = {
    Op.ADD_RR: "regs[{d}] = (regs[{d}] + regs[{s}]) & {m}",
    Op.SUB_RR: "regs[{d}] = (regs[{d}] - regs[{s}]) & {m}",
    Op.AND_RR: "regs[{d}] &= regs[{s}]",
    Op.OR_RR: "regs[{d}] |= regs[{s}]",
    Op.XOR_RR: "regs[{d}] ^= regs[{s}]",
    Op.SHL_RR: "regs[{d}] = (regs[{d}] << (regs[{s}] & 63)) & {m}",
    Op.SHR_RR: "regs[{d}] >>= regs[{s}] & 63",
    Op.SAR_RR: "regs[{d}] = (((regs[{d}] ^ {sg}) - {sg})"
               " >> (regs[{s}] & 63)) & {m}",
    Op.IMUL_RR: "regs[{d}] = (((regs[{d}] ^ {sg}) - {sg})"
                " * ((regs[{s}] ^ {sg}) - {sg})) & {m}",
}

_SUPPORTED = frozenset(
    op for op in vars(Op).values() if isinstance(op, int))


class Block:
    """One superblock: decoded immediately, compiled only when hot.

    The first :data:`COLD_RUNS` visits execute the block as a *stub*
    (``fn is None``): the dispatch loop replays it through the
    single-step oracle and bumps :attr:`warm`.  The next visit pays the
    codegen (``BlockCache.compile_block``).  This keeps Python
    ``compile()`` cost off straight-through init code — only leaders
    re-reached enough times (loops, called functions) are fused."""

    __slots__ = ("start", "end", "n", "rips", "items", "warm",
                 "fn", "src")

    def __init__(self, start, end, rips, items):
        self.start = start
        self.end = end
        self.n = len(rips)
        self.rips = rips
        self.items = items
        self.warm = 0
        self.fn = None
        self.src = None


class BlockCache:
    """Per-CPU cache of translated superblocks, keyed by leader address.

    Registers a weakref-based write hook on the CPU's address space so
    stores into the watched code range invalidate exactly the
    overlapping blocks (and abort the current one); once the cache is
    garbage-collected the hook reports itself dead and is pruned."""

    def __init__(self, cpu):
        self.cpu = cpu
        self.blocks = {}
        #: Block currently executing (dispatch loop sets this before
        #: each closure call so the hook can detect self-modification).
        self.current = None
        #: Set by the hook when a store hits the *current* block;
        #: generated code polls it after each store.
        self.abort = False
        ref = weakref.ref(self)

        def _hook(addr, size):
            cache = ref()
            if cache is None:
                return False
            cache.invalidate(addr, size)
            return True

        cpu.space.add_code_write_hook(_hook)

    def invalidate(self, addr, size) -> None:
        """Drop every block overlapping ``[addr, addr+size)``."""
        hi = addr + size
        cur = self.current
        if cur is not None and cur.start < hi and addr < cur.end:
            self.abort = True
        blocks = self.blocks
        if blocks:
            dead = [a for a, b in blocks.items()
                    if b.start < hi and addr < b.end]
            for a in dead:
                del blocks[a]

    def translate(self, rip):
        """Decode the block whose leader is ``rip`` into a stub; None
        if the leader itself is undecodable or non-executable (the
        dispatch loop then single-steps so the fault surfaces with
        legacy semantics)."""
        space = self.cpu.space
        if not space.in_enclave(rip):
            return None
        base = space.enclave_base
        try:
            decoded = decode_block(space.enclave_view(), rip - base,
                                   MAX_BLOCK_INSTRS)
        except EncodingError:
            return None
        items = []
        addr = rip
        for instr, length in decoded:
            if instr.op not in _SUPPORTED:
                break
            try:
                space.check_exec(addr, length)
            except MemoryFault:
                break
            items.append((addr, instr, length))
            addr += length
        if not items:
            return None
        block = Block(rip, addr, [a for a, _, _ in items], items)
        self.blocks[rip] = block
        return block

    # -- code generation ---------------------------------------------------

    def compile_block(self, block):
        """Generate and install the fused closure for a warm stub."""
        fn = self._compile(block.start, block.items, block)
        block.fn = fn
        block.items = None
        return fn

    def _compile(self, start, items, block):
        cpu = self.cpu
        cm = cpu.cost_model
        hot_lo, hot_hi = cpu.hot_range
        hot_on = hot_lo < hot_hi
        epc_on = cpu._epc_resident is not None
        n = len(items)
        M = _U64
        S = _SIGN
        body = []
        emit = body.append
        known = 0  # 0: entry flags (kind unknown), 1: CMP, 2: TEST

        def addr_of(mem) -> str:
            parts = []
            if mem.base is not None:
                parts.append(f"regs[{mem.base}]")
            if mem.index is not None:
                parts.append(f"regs[{mem.index}]" if mem.scale == 1
                             else f"regs[{mem.index}] * {mem.scale}")
            if not parts:
                return str(mem.disp & M)
            if mem.disp:
                parts.append(str(mem.disp))
            if len(parts) == 1:
                return f"{parts[0]} & {M}"
            return "(" + " + ".join(parts) + f") & {M}"

        def mem_cost(cost) -> None:
            # Same order as the step engine: the hot/EPC adjustment is
            # added *before* the access, so a faulting access leaves it
            # in the account.
            if hot_on:
                emit(f"if {hot_lo} <= a < {hot_hi}:")
                emit(f"    cycles += {cm.hot_mem_cost - cost!r}")
                if epc_on:
                    emit("else:")
                    emit("    cycles += epc_touch(a)")
            elif epc_on:
                emit("cycles += epc_touch(a)")

        def ret(rip_expr, kind=0, aux=0, nexec=n) -> str:
            return (f"return {rip_expr}, fk, fa, fb, cycles, "
                    f"{kind}, {aux}, {nexec}")

        # Specialized memory access: an in-enclave bounds + page-perm
        # fast path straight against the backing bytearray, with the
        # fully checked AddressSpace call as the fallback for faults,
        # untrusted memory, ELRANGE straddles and watched-code stores
        # (the fallback preserves exact legacy fault/versioning
        # semantics; the fast path is only taken when no check could
        # fire).  Base, size, perms and the code-watch range are baked
        # at translation time — an invalidation-triggering store never
        # takes the fast path, so re-translation picks up new code.
        space = cpu.space
        ebase = space.enclave_base
        esize = space.enclave_size
        wlo, whi = space._code_watch
        # Dirty-page tracking (checkpoint support) is baked at compile
        # time: fast-path stores bypass AddressSpace.store, so when
        # tracking is on they record the touched page themselves — one
        # set.add on the offset the store already computed.  The
        # fallback path (store_u64/store_u8) marks inside AddressSpace.
        dirty_on = space.dirty_tracking

        def emit_load64(dst, var="a"):
            emit(f"o = {var} - {ebase}")
            emit(f"if 0 <= o <= {esize - 8} and perms[o >> 12] & 1"
                 f" and perms[(o + 7) >> 12] & 1:")
            emit(f"    {dst} = upk_q(smem, o)[0]")
            emit("else:")
            emit(f"    {dst} = load_u64({var})")

        def emit_store64(value, var="a"):
            # ``value`` must already be masked to 64 bits.
            emit(f"o = {var} - {ebase}")
            cond = (f"0 <= o <= {esize - 8} and perms[o >> 12] & 2"
                    f" and perms[(o + 7) >> 12] & 2")
            if whi > wlo:
                cond += f" and ({var} >= {whi} or {var} + 8 <= {wlo})"
            emit(f"if {cond}:")
            emit(f"    pck_q(smem, o, {value})")
            if dirty_on:
                emit("    dirty_add(o >> 12)")
                emit("    dirty_add((o + 7) >> 12)")
            emit("else:")
            emit(f"    store_u64({var}, {value})")

        def emit_load8(dst):
            emit(f"o = a - {ebase}")
            emit(f"if 0 <= o < {esize} and perms[o >> 12] & 1:")
            emit(f"    {dst} = smem[o]")
            emit("else:")
            emit(f"    {dst} = load_u8(a)")

        def emit_store8(value):
            # ``value`` must already be masked to 8 bits.
            emit(f"o = a - {ebase}")
            cond = f"0 <= o < {esize} and perms[o >> 12] & 2"
            if whi > wlo:
                cond += f" and not {wlo} <= a < {whi}"
            emit(f"if {cond}:")
            emit(f"    smem[o] = {value}")
            if dirty_on:
                emit("    dirty_add(o >> 12)")
            emit("else:")
            emit(f"    store_u8(a, {value})")

        for k, (rip, instr, length) in enumerate(items):
            op = instr.op
            ops = instr.operands
            cost = cm.cost_of(op)
            C = repr(cost)
            next_rip = (rip + length) & M
            last = k == n - 1

            def abort_check():
                # A store may have invalidated this very block; bail
                # out with the exact retire count.  On a terminator the
                # normal return follows immediately, so just clear.
                emit("if cache.abort:")
                emit("    cache.abort = False")
                if not last:
                    emit("    " + ret(next_rip, nexec=k + 1))

            if op == Op.MOV_RM or op == Op.LDB:
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit(f"a = {addr_of(ops[1])}")
                mem_cost(cost)
                if op == Op.MOV_RM:
                    emit_load64(f"regs[{ops[0]}]")
                else:
                    emit_load8(f"regs[{ops[0]}]")
            elif op == Op.MOV_MR or op == Op.STB:
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit(f"a = {addr_of(ops[0])}")
                mem_cost(cost)
                if op == Op.MOV_MR:
                    emit_store64(f"regs[{ops[1]}] & {M}")
                else:
                    emit_store8(f"regs[{ops[1]}] & 255")
                abort_check()
            elif op == Op.MOV_MI:
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit(f"a = {addr_of(ops[0])}")
                mem_cost(cost)
                emit_store64(str(ops[1] & M))
                abort_check()
            elif op == Op.MOV_RR:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = regs[{ops[1]}]")
            elif op == Op.MOV_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = {ops[1]}")
            elif op == Op.LEA:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = {addr_of(ops[1])}")
            elif op in _ALU_RR:
                emit(f"cycles += {C}")
                emit(_ALU_RR[op].format(d=ops[0], s=ops[1], m=M, sg=S))
            elif op == Op.ADD_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = (regs[{ops[0]}] + {ops[1]}) & {M}")
            elif op == Op.SUB_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = (regs[{ops[0]}] - {ops[1]}) & {M}")
            elif op == Op.IMUL_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = (((regs[{ops[0]}] ^ {S}) - {S})"
                     f" * {ops[1]}) & {M}")
            elif op == Op.AND_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] &= {ops[1] & M}")
            elif op == Op.OR_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] |= {ops[1] & M}")
            elif op == Op.XOR_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] ^= {ops[1] & M}")
            elif op == Op.SHL_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = (regs[{ops[0]}]"
                     f" << {ops[1] & 63}) & {M}")
            elif op == Op.SHR_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] >>= {ops[1] & 63}")
            elif op == Op.SAR_RI:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = (((regs[{ops[0]}] ^ {S}) - {S})"
                     f" >> {ops[1] & 63}) & {M}")
            elif op == Op.NEG:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = -regs[{ops[0]}] & {M}")
            elif op == Op.NOT:
                emit(f"cycles += {C}")
                emit(f"regs[{ops[0]}] = ~regs[{ops[0]}] & {M}")
            elif op in (Op.DIV_RR, Op.DIV_RI, Op.MOD_RR, Op.MOD_RI):
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit(f"t = (regs[{ops[0]}] ^ {S}) - {S}")
                if op in (Op.DIV_RR, Op.MOD_RR):
                    emit(f"u = (regs[{ops[1]}] ^ {S}) - {S}")
                else:
                    emit(f"u = {ops[1]}")
                emit("if u == 0:")
                emit(f'    raise CpuFault("division by zero at {rip:#x}")')
                emit("q = abs(t) // abs(u)")
                emit("if (t < 0) != (u < 0):")
                emit("    q = -q")
                if op in (Op.DIV_RR, Op.DIV_RI):
                    emit(f"regs[{ops[0]}] = q & {M}")
                else:
                    emit(f"regs[{ops[0]}] = (t - q * u) & {M}")
            elif op == Op.CMP_RR:
                emit(f"cycles += {C}")
                emit(f"fa = regs[{ops[0]}]")
                emit(f"fb = regs[{ops[1]}]")
                emit("fk = 1")
                known = 1
            elif op == Op.CMP_RI:
                # fb holds imm & U64: both the unsigned compare and the
                # sign-flip signed compare recover the legacy result
                # because |imm| < 2**63.
                emit(f"cycles += {C}")
                emit(f"fa = regs[{ops[0]}]")
                emit(f"fb = {ops[1] & M}")
                emit("fk = 1")
                known = 1
            elif op == Op.TEST_RR:
                emit(f"cycles += {C}")
                emit(f"fa = regs[{ops[0]}] & regs[{ops[1]}]")
                emit("fk = 2")
                known = 2
            elif op == Op.JMP:
                emit(f"cycles += {C}")
                emit(ret((rip + length + ops[0]) & M))
            elif op == Op.JMP_R:
                emit(f"cycles += {C}")
                emit(ret(f"regs[{ops[0]}] & {M}"))
            elif op in _CMP_PRED:  # the ten Jcc opcodes
                emit(f"cycles += {C}")
                if known == 1:
                    pred = _CMP_PRED[op]
                elif known == 2:
                    pred = _TEST_PRED[op]
                else:
                    pred = f"jcc({op}, fk, fa, fb)"
                emit(f"if {pred}:")
                emit("    " + ret((rip + length + ops[0]) & M))
                emit(ret(next_rip))
            elif op == Op.CALL or op == Op.CALL_R:
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit(f"r = (regs[4] - 8) & {M}")
                emit("regs[4] = r")
                if epc_on:
                    emit("d = epc_touch(r)")
                emit_store64(str(next_rip), var="r")
                if epc_on:
                    emit("cycles += d")
                abort_check()
                if op == Op.CALL:
                    emit(ret((rip + length + ops[0]) & M))
                else:
                    emit(ret(f"regs[{ops[0]}] & {M}"))
            elif op == Op.RET:
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit("r = regs[4]")
                if epc_on:
                    emit("d = epc_touch(r)")
                emit_load64("v", var="r")
                emit(f"regs[4] = (r + 8) & {M}")
                if epc_on:
                    emit("cycles += d")
                emit(ret("v"))
            elif op == Op.PUSH_R or op == Op.PUSH_I:
                value = (f"regs[{ops[0]}] & {M}" if op == Op.PUSH_R
                         else str(ops[0] & M))
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit(f"r = (regs[4] - 8) & {M}")
                emit("regs[4] = r")
                if epc_on:
                    emit("d = epc_touch(r)")
                emit_store64(value, var="r")
                if epc_on:
                    emit("cycles += d")
                abort_check()
            elif op == Op.POP_R:
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit("r = regs[4]")
                if epc_on:
                    emit("d = epc_touch(r)")
                emit_load64("v", var="r")
                emit(f"regs[4] = (r + 8) & {M}")
                emit(f"regs[{ops[0]}] = v")
                if epc_on:
                    emit("cycles += d")
            elif op == Op.SVC:
                emit(f"cycles += {C}")
                emit(ret(next_rip, kind=1, aux=ops[0]))
            elif op == Op.NOP:
                emit(f"cycles += {C}")
            elif op == Op.HLT:
                emit(f"cycles += {C}")
                emit(ret(next_rip, kind=2))
            elif op == Op.TRAP:
                emit(f"i_ = {k}")
                emit(f"cycles += {C}")
                emit(f"raise PolicyViolation({ops[0]}, {rip})")
            else:  # pragma: no cover - _SUPPORTED pre-filter is total
                raise AssertionError(f"untranslatable opcode {op:#x}")

        if items[-1][1].op not in BLOCK_TERMINATORS:
            # Truncated block (decode failure, exec-perm edge or length
            # cap): fall through to the next leader.
            emit(ret((items[-1][0] + items[-1][2]) & M))

        lines = [
            "def _blk(regs, fk, fa, fb, cycles,",
            "         load_u64=load_u64, store_u64=store_u64,",
            "         load_u8=load_u8, store_u8=store_u8,",
            "         smem=smem, perms=perms, upk_q=upk_q, pck_q=pck_q,",
            "         epc_touch=epc_touch, cache=cache,",
            "         fault=fault, jcc=jcc, dirty_add=dirty_add):",
            "    i_ = 0",
            "    try:",
        ]
        lines += ["        " + ln for ln in body]
        lines += [
            "    except BaseException:",
            "        fault(i_, cycles, fk, fa, fb)",
            "        raise",
        ]
        src = "\n".join(lines) + "\n"
        from ..errors import CpuFault, PolicyViolation
        namespace = {
            "load_u64": space.load_u64,
            "store_u64": space.store_u64,
            "load_u8": space.load_u8,
            "store_u8": space.store_u8,
            "smem": space._mem,
            "perms": space._perms,
            "upk_q": _STRUCT_Q.unpack_from,
            "pck_q": _STRUCT_Q.pack_into,
            "epc_touch": cpu._epc_touch,
            "cache": self,
            "dirty_add": space._dirty.add,
            "fault": cpu._set_closure_fault,
            "jcc": eval_jcc,
            "CpuFault": CpuFault,
            "PolicyViolation": PolicyViolation,
        }
        exec(compile(src, f"<block {start:#x}>", "exec"), namespace)
        block.src = src
        return namespace["_blk"]
