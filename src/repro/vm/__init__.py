"""DX86 virtual machine.

Executes encoded DX86 against an :class:`~repro.sgx.memory.AddressSpace`
with page-permission enforcement, injects AEX events on a configurable
schedule (dumping the register file into the SSA, as SGX hardware does),
and accounts cycles through a calibrated cost model so instrumentation
overhead is deterministic and reproducible.
"""

from .costmodel import CostModel
from .interrupts import AexSchedule, AexTimer
from .cpu import CPU, ExecResult
from .smt import RoundRobinScheduler, ThreadState
from .translate import Block, BlockCache

__all__ = ["CostModel", "AexSchedule", "AexTimer", "CPU", "ExecResult",
           "RoundRobinScheduler", "ThreadState", "Block", "BlockCache"]
