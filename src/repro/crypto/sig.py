"""Schnorr signatures over the RFC 3526 prime-order subgroup.

Stands in for the platform attestation key and the attestation service's
report-signing key (the paper's EPID/ECDSA machinery).  Nonces are
derived deterministically from the key and message (RFC 6979 style), so
signing never needs an entropy source inside the simulated enclave.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from .dh import MODP_2048_G as G, MODP_2048_P as P, MODP_2048_Q as Q

_Q_BYTES = (Q.bit_length() + 7) // 8


def _hash_to_int(*parts: bytes) -> int:
    # Full 512-bit challenge (fits the fixed 64-byte signature field);
    # reduced mod Q only inside the group arithmetic.
    digest = hashlib.sha512(b"".join(parts)).digest()
    return int.from_bytes(digest, "big")


class VerifyingKey:
    """Public half of a Schnorr key."""

    def __init__(self, y: int):
        if not 1 < y < P - 1:
            raise ValueError("bad public key")
        self.y = y

    def to_bytes(self) -> bytes:
        return self.y.to_bytes(256, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "VerifyingKey":
        return cls(int.from_bytes(data, "big"))

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check ``signature`` (e || s, 64 + Q bytes) over ``message``."""
        if len(signature) != 64 + _Q_BYTES:
            return False
        e = int.from_bytes(signature[:64], "big")
        s = int.from_bytes(signature[64:], "big")
        if not (0 <= s < Q):
            return False
        # r' = g^s * y^e ; valid iff H(r' || m) == e
        r = (pow(G, s, P) * pow(self.y, e % Q, P)) % P
        expected = _hash_to_int(r.to_bytes(256, "big"), message)
        return hmac.compare_digest(
            expected.to_bytes(64, "big"), signature[:64])

    def fingerprint(self) -> bytes:
        return hashlib.sha256(self.to_bytes()).digest()


class SigningKey:
    """Private Schnorr key; deterministic when built from a seed."""

    def __init__(self, seed: bytes = None):
        if seed is None:
            x = secrets.randbits(512)
        else:
            x = int.from_bytes(
                hashlib.sha512(b"schnorr-key" + seed).digest(), "big")
        self._x = x % Q or 2
        self.verifying_key = VerifyingKey(pow(G, self._x, P))

    def derive_secret(self, label: bytes) -> bytes:
        """Derive a 32-byte secret bound to this private key.

        Used for key material that must be reproducible on the same
        platform but underivable from anything public (the sealing-fuse
        stand-in): HMAC over the label with the private scalar."""
        return hmac.new(self._x.to_bytes(_Q_BYTES, "big"), label,
                        hashlib.sha256).digest()

    def sign(self, message: bytes) -> bytes:
        """Produce ``e || s`` with a message-bound deterministic nonce."""
        key_bytes = self._x.to_bytes(_Q_BYTES, "big")
        k = int.from_bytes(
            hmac.new(key_bytes, b"nonce" + message,
                     hashlib.sha512).digest(), "big") % Q or 2
        r = pow(G, k, P)
        e = _hash_to_int(r.to_bytes(256, "big"), message)
        s = (k - self._x * e) % Q
        return e.to_bytes(64, "big") + s.to_bytes(_Q_BYTES, "big")
