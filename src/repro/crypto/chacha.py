"""ChaCha20 stream cipher (RFC 8439 core, from scratch)."""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state, a, b, c, d):
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def _block(key_words, counter: int, nonce_words) -> bytes:
    state = list(_CONSTANTS) + list(key_words) + [counter & _MASK32] + \
        list(nonce_words)
    working = state[:]
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(w + s) & _MASK32 for w, s in zip(working, state)]
    return struct.pack("<16I", *out)


class ChaCha20:
    """ChaCha20 keystream generator/cipher.

    ``key`` is 32 bytes, ``nonce`` is 12 bytes, ``counter`` the initial
    64-byte block counter.  Encryption and decryption are the same
    operation (XOR with the keystream).
    """

    def __init__(self, key: bytes, nonce: bytes, counter: int = 0):
        if len(key) != 32:
            raise ValueError("ChaCha20 key must be 32 bytes")
        if len(nonce) != 12:
            raise ValueError("ChaCha20 nonce must be 12 bytes")
        self._key_words = struct.unpack("<8I", key)
        self._nonce_words = struct.unpack("<3I", nonce)
        self._counter = counter

    def keystream(self, length: int) -> bytes:
        out = bytearray()
        while len(out) < length:
            out += _block(self._key_words, self._counter, self._nonce_words)
            self._counter += 1
        return bytes(out[:length])

    def process(self, data: bytes) -> bytes:
        stream = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, stream))


def chacha20_xor(key: bytes, nonce: bytes, data: bytes,
                 counter: int = 0) -> bytes:
    """One-shot encrypt/decrypt."""
    return ChaCha20(key, nonce, counter).process(data)
