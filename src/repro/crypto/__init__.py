"""Cryptographic substrate for attestation and secure channels.

Everything is implemented from scratch on stdlib hash primitives:
a ChaCha20 stream cipher, finite-field Diffie-Hellman (RFC 3526 group),
HKDF-SHA256, Schnorr signatures, and an encrypt-then-MAC channel with
the fixed-length padding that policy P0 uses for entropy control.

These stand in for the paper's mbedTLS + RA-TLS + EPID quote stack.
They are *simulation grade*: correct constructions, no side-channel
hardening, not for production use.
"""

from .chacha import ChaCha20, chacha20_xor
from .dh import DHKeyPair, MODP_2048_P, MODP_2048_G
from .hkdf import hkdf_extract, hkdf_expand, hkdf
from .sig import SigningKey, VerifyingKey
from .channel import SecureChannel, derive_channel_keys

__all__ = [
    "ChaCha20", "chacha20_xor",
    "DHKeyPair", "MODP_2048_P", "MODP_2048_G",
    "hkdf_extract", "hkdf_expand", "hkdf",
    "SigningKey", "VerifyingKey",
    "SecureChannel", "derive_channel_keys",
]
