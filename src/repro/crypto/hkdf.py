"""HKDF-SHA256 (RFC 5869) key derivation."""

from __future__ import annotations

import hashlib
import hmac

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract step: PRK = HMAC(salt, input keying material)."""
    return hmac.new(salt or b"\x00" * _HASH_LEN, ikm, hashlib.sha256) \
        .digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand step: derive ``length`` bytes bound to ``info``."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            prk, previous + info + bytes([counter]), hashlib.sha256).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(ikm: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
