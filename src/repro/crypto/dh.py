"""Finite-field Diffie-Hellman over the RFC 3526 2048-bit MODP group.

Used for the key agreement of §III-A: data owner and code provider each
run a DH exchange with the bootstrap enclave after verifying its quote.
"""

from __future__ import annotations

import hashlib
import secrets

MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF", 16)
MODP_2048_G = 2

#: Order of the prime-order subgroup (p is a safe prime, q = (p-1)/2).
MODP_2048_Q = (MODP_2048_P - 1) // 2


class DHKeyPair:
    """Ephemeral DH key pair with a deterministic-from-seed option.

    A seed keeps protocol tests reproducible; production callers omit it
    and get a fresh random exponent.
    """

    def __init__(self, seed: bytes = None):
        if seed is None:
            exponent = secrets.randbits(512)
        else:
            exponent = int.from_bytes(
                hashlib.sha512(b"dh-exponent" + seed).digest(), "big")
        self._x = exponent % MODP_2048_Q or 2
        self.public = pow(MODP_2048_G, self._x, MODP_2048_P)

    def shared_secret(self, peer_public: int) -> bytes:
        """Return the hashed shared secret with ``peer_public``.

        Rejects degenerate public values (0, 1, p-1) that would force a
        predictable secret.
        """
        if not 1 < peer_public < MODP_2048_P - 1:
            raise ValueError("degenerate DH public value")
        secret = pow(peer_public, self._x, MODP_2048_P)
        raw = secret.to_bytes((MODP_2048_P.bit_length() + 7) // 8, "big")
        return hashlib.sha256(b"dh-shared" + raw).digest()

    def public_bytes(self) -> bytes:
        return self.public.to_bytes(256, "big")

    @staticmethod
    def public_from_bytes(data: bytes) -> int:
        if len(data) != 256:
            raise ValueError("DH public value must be 256 bytes")
        return int.from_bytes(data, "big")
