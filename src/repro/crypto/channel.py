"""Authenticated secure channel with P0-style traffic shaping.

The channel models the RA-TLS session between the bootstrap enclave and a
remote party: ChaCha20 encryption, HMAC-SHA256 authentication
(encrypt-then-MAC), strictly increasing sequence numbers (replay
protection), and **fixed-length record padding** — the paper's covert-
channel countermeasure: an observer of the wire sees only the number of
equal-sized records, never the plaintext length.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from typing import Tuple

from ..errors import ProtocolError
from .chacha import chacha20_xor
from .hkdf import hkdf

_MAC_LEN = 32
_LEN_HDR = 4


def derive_channel_keys(shared_secret: bytes, transcript: bytes,
                        role: str) -> Tuple[bytes, bytes, bytes, bytes]:
    """Derive (send_key, send_mac, recv_key, recv_mac) for ``role``.

    ``role`` is ``"client"`` or ``"server"``; the two sides derive
    mirrored key sets from the DH secret and the handshake transcript.
    """
    if role not in ("client", "server"):
        raise ProtocolError(f"bad role {role!r}")
    okm = hkdf(shared_secret, hashlib.sha256(transcript).digest(),
               b"deflection-channel-v1", 128)
    c2s_key, c2s_mac = okm[0:32], okm[32:64]
    s2c_key, s2c_mac = okm[64:96], okm[96:128]
    if role == "client":
        return c2s_key, c2s_mac, s2c_key, s2c_mac
    return s2c_key, s2c_mac, c2s_key, c2s_mac


class SecureChannel:
    """One endpoint of an established channel.

    ``record_size`` is the fixed plaintext capacity per record; messages
    are split and zero-padded so every ciphertext record has identical
    length (P0 entropy control).
    """

    def __init__(self, send_key: bytes, send_mac: bytes,
                 recv_key: bytes, recv_mac: bytes,
                 record_size: int = 1024,
                 rekey_after: int = None):
        if record_size <= _LEN_HDR:
            raise ProtocolError(
                f"record_size must exceed the {_LEN_HDR}-byte length "
                f"header (got {record_size})")
        self._send_key = send_key
        self._send_mac = send_mac
        self._recv_key = recv_key
        self._recv_mac = recv_mac
        self._send_seq = 0
        self._recv_seq = 0
        self.record_size = record_size
        #: Records per direction before the keys auto-ratchet.  ``None``
        #: disables the ratchet (one static key for the session — fine
        #: for request/response, not for long-lived streaming sessions
        #: where ``_send_seq`` would otherwise grow unbounded over one
        #: key).  Both endpoints see the same record stream, so the
        #: per-direction ratchets fire in lockstep.
        self.rekey_after = rekey_after
        #: Completed key ratchets (both auto and explicit).
        self.rekeys = 0
        #: Set when :meth:`open` failed mid-stream.  The receive sequence
        #: number can no longer be trusted to mirror the peer's, so the
        #: endpoint fails closed: every further seal/open raises until
        #: the session is re-established with fresh keys.
        self.desynced = False

    @classmethod
    def pair(cls, shared_secret: bytes, transcript: bytes = b"",
             record_size: int = 1024) -> Tuple["SecureChannel",
                                               "SecureChannel"]:
        """Build a connected (client, server) endpoint pair — test helper."""
        ck = derive_channel_keys(shared_secret, transcript, "client")
        sk = derive_channel_keys(shared_secret, transcript, "server")
        return cls(*ck, record_size=record_size), \
            cls(*sk, record_size=record_size)

    # -- records ---------------------------------------------------------

    def _nonce(self, seq: int) -> bytes:
        return struct.pack("<Q", seq) + b"\x00" * 4

    def _desync(self, message: str) -> None:
        self.desynced = True
        raise ProtocolError(message)

    def _check_usable(self) -> None:
        if self.desynced:
            raise ProtocolError(
                "channel desynced by an earlier record failure; "
                "re-establish the session")

    # -- key ratcheting --------------------------------------------------

    @staticmethod
    def _ratchet(key: bytes, mac: bytes) -> Tuple[bytes, bytes]:
        """One-way HKDF step: the old (key, mac) pair derives the new
        one and is then discarded — a record forged under the old keys
        can never authenticate again."""
        okm = hkdf(key, mac, b"deflection-channel-rekey-v1", 64)
        return okm[:32], okm[32:64]

    def _maybe_ratchet_send(self) -> None:
        if self.rekey_after is not None and \
                self._send_seq >= self.rekey_after:
            self._send_key, self._send_mac = self._ratchet(
                self._send_key, self._send_mac)
            self._send_seq = 0
            self.rekeys += 1

    def _maybe_ratchet_recv(self) -> None:
        if self.rekey_after is not None and \
                self._recv_seq >= self.rekey_after:
            self._recv_key, self._recv_mac = self._ratchet(
                self._recv_key, self._recv_mac)
            self._recv_seq = 0
            self.rekeys += 1

    def rekey(self) -> None:
        """Explicitly ratchet both directions and reset the sequence
        counters.  Both endpoints must rekey at the same stream
        position (e.g. a protocol-level rekey message, or the
        ``rekey_after`` threshold doing it implicitly); a desynced
        channel refuses — rekeying would only mask the earlier
        failure."""
        self._check_usable()
        self._send_key, self._send_mac = self._ratchet(
            self._send_key, self._send_mac)
        self._recv_key, self._recv_mac = self._ratchet(
            self._recv_key, self._recv_mac)
        self._send_seq = 0
        self._recv_seq = 0
        self.rekeys += 1

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` into one or more fixed-size records."""
        self._check_usable()
        records = []
        chunks = [plaintext[i:i + self.record_size - _LEN_HDR]
                  for i in range(0, len(plaintext),
                                 self.record_size - _LEN_HDR)] or [b""]
        for chunk in chunks:
            self._maybe_ratchet_send()
            body = struct.pack("<I", len(chunk)) + chunk
            body += b"\x00" * (self.record_size - len(body))
            seq = self._send_seq
            self._send_seq += 1
            ct = chacha20_xor(self._send_key, self._nonce(seq), body)
            tag = hmac.new(self._send_mac, struct.pack("<Q", seq) + ct,
                           hashlib.sha256).digest()
            records.append(ct + tag)
        return b"".join(records)

    def open(self, wire: bytes) -> bytes:
        """Decrypt and authenticate records produced by the peer.

        Any failure — an empty or truncated stream, a bad MAC, a bad
        length field — marks the endpoint :attr:`desynced`: the local
        receive counter may no longer mirror the peer's send counter,
        and continuing would either reject every honest record or,
        worse, accept a replay window.  A desynced channel refuses all
        further use; the session must be re-established.
        """
        self._check_usable()
        record_len = self.record_size + _MAC_LEN
        if not wire:
            self._desync("empty wire: truncated record stream")
        if len(wire) % record_len:
            self._desync("truncated record stream")
        out = bytearray()
        for off in range(0, len(wire), record_len):
            self._maybe_ratchet_recv()
            ct = wire[off:off + self.record_size]
            tag = wire[off + self.record_size:off + record_len]
            seq = self._recv_seq
            expected = hmac.new(self._recv_mac,
                                struct.pack("<Q", seq) + ct,
                                hashlib.sha256).digest()
            if not hmac.compare_digest(expected, tag):
                self._desync(f"record {seq}: bad MAC")
            self._recv_seq += 1
            body = chacha20_xor(self._recv_key, self._nonce(seq), ct)
            (length,) = struct.unpack_from("<I", body)
            if length > self.record_size - _LEN_HDR:
                self._desync(f"record {seq}: bad length")
            out += body[_LEN_HDR:_LEN_HDR + length]
        return bytes(out)

    def wire_length(self, plaintext_len: int) -> int:
        """Bytes on the wire for a message — depends only on record count."""
        payload = self.record_size - _LEN_HDR
        records = max(1, -(-plaintext_len // payload))
        return records * (self.record_size + _MAC_LEN)
