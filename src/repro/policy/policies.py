"""Policy switchboard.

The paper's generator has IR-level switches whose states flow down to the
backend instrumentation passes (§V-A); the verifier uses the *same*
policy set to know which annotations to demand.  ``PolicySet`` is that
shared switchboard.  P0 (interface constraint, output encryption, entropy
control) is enforced by the bootstrap enclave's ECall/OCall wrappers, not
by instrumentation, but is carried here so one object states the full
contract.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PolicySet:
    """Which policies the producer must instrument for and the verifier
    must check."""

    p0: bool = True   # interface control (bootstrap-enforced)
    p1: bool = False  # explicit out-of-enclave stores
    p2: bool = False  # implicit stores via RSP
    p3: bool = False  # security-critical data writes
    p4: bool = False  # runtime code modification (software DEP)
    p5: bool = False  # CFI: indirect branches + shadow stack
    p6: bool = False  # AEX side/covert-channel mitigation
    #: §VII multi-threading variant: CFI metadata (the shadow-stack
    #: pointer) lives in a reserved *register* (R13) instead of memory,
    #: so concurrent threads cannot race on it (TOCTOU-safe); each
    #: thread gets its own shadow-stack slice by construction.
    mt_safe: bool = False

    def __post_init__(self):
        if self.mt_safe and self.p6:
            raise ValueError(
                "P6's SSA marker is a per-thread memory cell; combining "
                "it with mt_safe needs per-thread instrumentation the "
                "paper leaves to future work")

    # -- presets matching the paper's evaluation columns -------------------

    @classmethod
    def none(cls) -> "PolicySet":
        """Baseline: pure loader, no instrumentation (paper's baseline)."""
        return cls(p0=True)

    @classmethod
    def p1_only(cls) -> "PolicySet":
        return cls(p1=True)

    @classmethod
    def p1_p2(cls) -> "PolicySet":
        return cls(p1=True, p2=True)

    @classmethod
    def p1_p5(cls) -> "PolicySet":
        return cls(p1=True, p2=True, p3=True, p4=True, p5=True)

    @classmethod
    def full(cls) -> "PolicySet":
        return cls(p1=True, p2=True, p3=True, p4=True, p5=True, p6=True)

    @classmethod
    def multithreaded(cls) -> "PolicySet":
        """P1-P5 with register-held CFI metadata (§VII)."""
        return cls(p1=True, p2=True, p3=True, p4=True, p5=True,
                   mt_safe=True)

    @classmethod
    def parse(cls, text: str) -> "PolicySet":
        """Parse the paper's column labels: ``P1``, ``P1+P2``, ``P1-P5``,
        ``P1-P6``, ``baseline``."""
        normalized = text.strip().upper().replace(" ", "")
        table = {
            "BASELINE": cls.none(), "NONE": cls.none(),
            "P1": cls.p1_only(), "P1+P2": cls.p1_p2(),
            "P1-P5": cls.p1_p5(), "P1-P6": cls.full(),
            "P1-P5-MT": cls.multithreaded(),
        }
        if normalized not in table:
            raise ValueError(f"unknown policy setting {text!r}")
        return table[normalized]

    # -- helpers -------------------------------------------------------------

    def with_policy(self, **kwargs) -> "PolicySet":
        return replace(self, **kwargs)

    @property
    def any_store_guard(self) -> bool:
        """Whether stores need an annotation at all."""
        return self.p1 or self.p3 or self.p4

    @property
    def label(self) -> str:
        if not any((self.p1, self.p2, self.p3, self.p4, self.p5, self.p6)):
            return "baseline"
        if self.p6:
            return "P1-P6"
        if self.p5:
            return "P1-P5-MT" if self.mt_safe else "P1-P5"
        if self.p2:
            return "P1+P2"
        return "P1"

    def describe(self) -> str:
        enabled = [name.upper() for name in
                   ("p0", "p1", "p2", "p3", "p4", "p5", "p6")
                   if getattr(self, name)]
        if self.mt_safe:
            enabled.append("MT")
        return "+".join(enabled) if enabled else "none"
