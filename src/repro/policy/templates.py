"""Parametric annotation templates.

Each template is a list of :class:`PatternInstr` — opcode plus operand
*atoms*.  The compiler's instrumentation passes **emit** a template
(instantiating atoms with concrete operands and labels); the in-enclave
verifier **matches** decoded instructions against the same template.
Because both directions derive from one definition, the producer and
consumer cannot drift apart — the property the paper gets by publishing
the consumer's checking rules.

Atom kinds
----------
* plain ``int``          — exact register index
* plain :class:`Mem`     — exact memory operand
* :class:`Mag`           — magic 64-bit placeholder (``MOV r, imm64``)
* :class:`ImmAtom`       — exact immediate value
* :class:`TrapTo`        — rel32 that must land on the trap pad for a
                           violation code
* :class:`LocalTo`       — rel32 to another index of the same template
* :class:`TargetReg`     — captured register (the indirect-branch target);
                           must be consistent across the template and must
                           not be RSP or an annotation-reserved register
* :class:`AnchorMem`     — captured memory operand that must equal the
                           guarded store's destination
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.encoding import MOV_RI_IMM_OFFSET, encode_instruction
from ..isa.instructions import Instruction, Mem, Op, SPECS
from ..isa.registers import R13, R14, R15, RSP, RESERVED_REGS
from .magic import (
    MAGIC, MARKER_VALUE,
    VIOL_P1, VIOL_P2, VIOL_P3, VIOL_P4,
    VIOL_P5_TARGET, VIOL_P5_RET, VIOL_P5_SHADOW, VIOL_P6,
)
from .policies import PolicySet


class AnnotationKind:
    """Discriminates what a matched annotation licenses."""

    STORE_GUARD = "store_guard"
    RSP_GUARD = "rsp_guard"
    INDIRECT = "indirect_branch"
    PROLOGUE = "shadow_prologue"
    EPILOGUE = "shadow_epilogue"
    P6_GUARD = "p6_guard"


@dataclass(frozen=True)
class Mag:
    name: str


@dataclass(frozen=True)
class ImmAtom:
    value: int


@dataclass(frozen=True)
class TrapTo:
    code: int


@dataclass(frozen=True)
class LocalTo:
    index: int


@dataclass(frozen=True)
class TargetReg:
    pass


@dataclass(frozen=True)
class AnchorMem:
    pass


@dataclass(frozen=True)
class AnchorReg:
    """Register operand ``index`` of the guarded anchor instruction —
    lets custom policies (repro.policy.custom) reference the anchor's
    own operands inside the guard."""

    index: int


@dataclass(frozen=True)
class PatternInstr:
    op: int
    atoms: tuple


def _p(op: int, *atoms) -> PatternInstr:
    return PatternInstr(op, atoms)


Pattern = List[PatternInstr]


# ---------------------------------------------------------------------------
# Template definitions
# ---------------------------------------------------------------------------

def store_guard_pattern(policies: PolicySet) -> Pattern:
    """Guard before every explicit memory store (P1, P3, P4).

    One range check, exactly Fig. 5's shape.  The paper notes that "the
    instrumentation to enforce P1/P2 can be reused to enforce P3/P4 (via
    different boundaries), thus the performance overhead caused by P3/P4
    is negligible" — we implement precisely that: the annotation always
    compares against the ``p1_lo``/``p1_hi`` placeholders, and the
    in-enclave rewriter *tightens* the bounds when P3/P4 are enabled
    (the enclave layout places the critical region, the shadow stack,
    the branch map and the code pages in one contiguous band below the
    stack/heap data band, so excluding them is a lower-bound bump).
    """
    del policies  # shape is policy-independent; bounds come from the
    #               rewriter (see repro.core.rewriter.build_value_map)
    return [
        _p(Op.LEA, R15, AnchorMem()),
        _p(Op.MOV_RI, R14, Mag("p1_lo")),
        _p(Op.CMP_RR, R15, R14),
        _p(Op.JB, TrapTo(VIOL_P1)),
        _p(Op.MOV_RI, R14, Mag("p1_hi")),
        _p(Op.CMP_RR, R15, R14),
        _p(Op.JAE, TrapTo(VIOL_P1)),
    ]


def rsp_guard_pattern() -> Pattern:
    """Check RSP validity after an explicit stack-pointer write (P2)."""
    return [
        _p(Op.MOV_RI, R14, Mag("stack_lo")),
        _p(Op.CMP_RR, RSP, R14),
        _p(Op.JB, TrapTo(VIOL_P2)),
        _p(Op.MOV_RI, R14, Mag("stack_hi")),
        _p(Op.CMP_RR, RSP, R14),
        _p(Op.JA, TrapTo(VIOL_P2)),
    ]


def indirect_branch_pattern() -> Pattern:
    """Forward-edge CFI check before CALL/JMP through a register (P5).

    The target must fall inside the loaded code and its byte in the
    loader-built valid-target map must be 1 — the runtime equivalent of
    "the target is always on the (indirect-branch) list".
    """
    return [
        _p(Op.MOV_RR, R14, TargetReg()),
        _p(Op.MOV_RI, R15, Mag("code_base")),
        _p(Op.SUB_RR, R14, R15),
        _p(Op.MOV_RI, R15, Mag("code_len")),
        _p(Op.CMP_RR, R14, R15),
        _p(Op.JAE, TrapTo(VIOL_P5_TARGET)),
        _p(Op.MOV_RI, R15, Mag("brmap_base")),
        _p(Op.ADD_RR, R15, R14),
        _p(Op.LDB, R14, Mem(R15)),
        _p(Op.CMP_RI, R14, ImmAtom(1)),
        _p(Op.JNE, TrapTo(VIOL_P5_TARGET)),
    ]


def shadow_prologue_pattern(mt_safe: bool = False) -> Pattern:
    """Push the return address onto the shadow stack at function entry
    (P5 backward edge).

    The default variant keeps the shadow-stack pointer in a loader
    cell.  The ``mt_safe`` variant (§VII) keeps it in the reserved R13
    register — per-thread by construction, immune to cross-thread
    TOCTOU on the metadata.
    """
    if mt_safe:
        return [
            _p(Op.MOV_RI, R14, Mag("ss_top")),
            _p(Op.CMP_RR, R13, R14),
            _p(Op.JAE, TrapTo(VIOL_P5_SHADOW)),
            _p(Op.MOV_RM, R14, Mem(RSP)),
            _p(Op.MOV_MR, Mem(R13), R14),
            _p(Op.ADD_RI, R13, ImmAtom(8)),
        ]
    return [
        _p(Op.MOV_RI, R14, Mag("ss_cell")),
        _p(Op.MOV_RM, R15, Mem(R14)),
        _p(Op.MOV_RI, R13, Mag("ss_top")),
        _p(Op.CMP_RR, R15, R13),
        _p(Op.JAE, TrapTo(VIOL_P5_SHADOW)),
        _p(Op.MOV_RM, R13, Mem(RSP)),
        _p(Op.MOV_MR, Mem(R15), R13),
        _p(Op.ADD_RI, R15, ImmAtom(8)),
        _p(Op.MOV_MR, Mem(R14), R15),
    ]


def shadow_epilogue_pattern(mt_safe: bool = False) -> Pattern:
    """Pop the shadow stack and compare with the live return address
    immediately before RET (P5 backward edge)."""
    if mt_safe:
        return [
            _p(Op.SUB_RI, R13, ImmAtom(8)),
            _p(Op.MOV_RI, R14, Mag("ss_base")),
            _p(Op.CMP_RR, R13, R14),
            _p(Op.JB, TrapTo(VIOL_P5_SHADOW)),
            _p(Op.MOV_RM, R14, Mem(R13)),
            _p(Op.MOV_RM, R15, Mem(RSP)),
            _p(Op.CMP_RR, R14, R15),
            _p(Op.JNE, TrapTo(VIOL_P5_RET)),
        ]
    return [
        _p(Op.MOV_RI, R14, Mag("ss_cell")),
        _p(Op.MOV_RM, R15, Mem(R14)),
        _p(Op.SUB_RI, R15, ImmAtom(8)),
        _p(Op.MOV_RI, R13, Mag("ss_base")),
        _p(Op.CMP_RR, R15, R13),
        _p(Op.JB, TrapTo(VIOL_P5_SHADOW)),
        _p(Op.MOV_MR, Mem(R14), R15),
        _p(Op.MOV_RM, R13, Mem(R15)),
        _p(Op.MOV_RM, R14, Mem(RSP)),
        _p(Op.CMP_RR, R13, R14),
        _p(Op.JNE, TrapTo(VIOL_P5_RET)),
    ]


def p6_guard_pattern() -> Pattern:
    """HyperRace SSA-marker inspection at every basic-block entry (P6).

    Fast path (marker intact — no AEX since the last check): load,
    compare, one taken branch.  Slow path (marker clobbered by an AEX
    register dump): bump the software AEX counter, abort past the
    threshold, and restore the marker.
    """
    return [
        _p(Op.MOV_RI, R14, Mag("ssa_marker")),          # 0
        _p(Op.MOV_RM, R15, Mem(R14)),                   # 1
        _p(Op.CMP_RI, R15, ImmAtom(MARKER_VALUE)),      # 2
        _p(Op.JE, LocalTo(13)),                         # 3  intact: done
        _p(Op.MOV_RI, R14, Mag("aex_cnt")),             # 4
        _p(Op.MOV_RM, R15, Mem(R14)),                   # 5
        _p(Op.ADD_RI, R15, ImmAtom(1)),                 # 6
        _p(Op.MOV_MR, Mem(R14), R15),                   # 7
        _p(Op.MOV_RI, R13, Mag("aex_threshold")),       # 8
        _p(Op.CMP_RR, R15, R13),                        # 9
        _p(Op.JA, TrapTo(VIOL_P6)),                     # 10
        _p(Op.MOV_RI, R14, Mag("ssa_marker")),          # 11 reload
        _p(Op.MOV_MI, Mem(R14), ImmAtom(MARKER_VALUE)),  # 12 refresh
    ]


# ---------------------------------------------------------------------------
# Matching (consumer side)
# ---------------------------------------------------------------------------

@dataclass
class MatchResult:
    """Outcome of matching one template at one stream position."""

    matched: bool
    reason: str = ""
    end_index: int = 0
    target_reg: Optional[int] = None
    anchor_mem: Optional[Mem] = None
    #: (absolute text offset of imm64 field, magic name) for the rewriter.
    magic_slots: List[Tuple[int, str]] = field(default_factory=list)
    #: Text offsets of every instruction consumed by the match.
    interior_offsets: List[int] = field(default_factory=list)
    #: AnchorReg captures: pattern atom index -> observed register; the
    #: caller must compare them against the anchor's actual operands.
    anchor_regs: dict = field(default_factory=dict)


# Atom codes for compiled patterns: the isinstance chain in
# ``match_pattern`` is resolved once at compile time and the matcher
# dispatches on small ints.
_A_EXACT, _A_MAG, _A_IMM, _A_TRAP, _A_LOCAL, _A_TREG, _A_AMEM, \
    _A_AREG = range(8)

_COMPILE_CODES = ((Mag, _A_MAG), (ImmAtom, _A_IMM), (TrapTo, _A_TRAP),
                  (LocalTo, _A_LOCAL), (TargetReg, _A_TREG),
                  (AnchorMem, _A_AMEM), (AnchorReg, _A_AREG))


@dataclass(frozen=True)
class CompiledPattern:
    """A template preprocessed for the verifier's hot loop.

    ``rows[k] = (op, encoded_length, checks)`` with
    ``checks = ((operand_pos, atom_code, payload), ...)`` — the atom
    isinstance dispatch and ``SPECS`` length lookups are paid once at
    verifier construction instead of on every match attempt.
    """

    rows: tuple
    size: int


def compile_pattern(pattern: Pattern) -> CompiledPattern:
    """Precompile ``pattern`` for :func:`match_compiled`."""
    rows = []
    for pinstr in pattern:
        checks = []
        for pos, atom in enumerate(pinstr.atoms):
            for cls, code in _COMPILE_CODES:
                if isinstance(atom, cls):
                    break
            else:
                code = _A_EXACT
            if code == _A_MAG:
                payload = (MAGIC[atom.name], atom.name)
            elif code == _A_IMM:
                payload = atom.value
            elif code == _A_TRAP:
                payload = atom.code
            elif code in (_A_LOCAL, _A_AREG):
                payload = atom.index
            elif code == _A_EXACT:
                payload = atom
            else:
                payload = None
            checks.append((pos, code, payload))
        rows.append((pinstr.op, SPECS[pinstr.op].length, tuple(checks)))
    return CompiledPattern(tuple(rows), len(rows))


def match_compiled(compiled: CompiledPattern, stream, index: int,
                   trap_pads: Dict[int, int]) -> MatchResult:
    """Match a precompiled template against ``stream[index:]``.

    Behaviourally identical to :func:`match_pattern` on the source
    pattern — same accept/reject decisions, same ``MatchResult``
    contents, same rejection reasons.
    """
    result = MatchResult(matched=False)
    captured_reg: Optional[int] = None
    captured_mem: Optional[Mem] = None
    n = len(stream)
    if index + compiled.size > n:
        result.reason = "stream too short for annotation"
        return result
    interior = result.interior_offsets
    magic_slots = result.magic_slots
    for k, (want_op, enc_len, checks) in enumerate(compiled.rows):
        offset, instr = stream[index + k]
        if instr.op != want_op:
            result.reason = (f"annotation[{k}] opcode mismatch at "
                             f"{offset:#x}")
            return result
        operands = instr.operands
        for pos, code, payload in checks:
            operand = operands[pos]
            if code == _A_EXACT:
                if operand != payload:
                    result.reason = (f"annotation[{k}] operand mismatch "
                                     f"at {offset:#x}")
                    return result
            elif code == _A_MAG:
                if operand != payload[0]:
                    result.reason = (f"annotation[{k}] expected magic "
                                     f"{payload[1]} at {offset:#x}")
                    return result
                magic_slots.append(
                    (offset + MOV_RI_IMM_OFFSET, payload[1]))
            elif code == _A_IMM:
                if operand != payload:
                    result.reason = (f"annotation[{k}] bad immediate at "
                                     f"{offset:#x}")
                    return result
            elif code == _A_TRAP:
                if trap_pads.get(offset + enc_len + operand) != payload:
                    result.reason = (f"annotation[{k}] does not trap to "
                                     f"pad {payload} at {offset:#x}")
                    return result
            elif code == _A_LOCAL:
                want_index = index + payload
                if want_index >= n:
                    result.reason = (f"annotation[{k}] local target past "
                                     f"stream end")
                    return result
                if offset + enc_len + operand != stream[want_index][0]:
                    result.reason = (f"annotation[{k}] bad local target "
                                     f"at {offset:#x}")
                    return result
            elif code == _A_TREG:
                if not isinstance(operand, int) or \
                        operand in RESERVED_REGS or operand == RSP:
                    result.reason = (f"annotation[{k}] illegal target "
                                     f"register at {offset:#x}")
                    return result
                if captured_reg is None:
                    captured_reg = operand
                elif captured_reg != operand:
                    result.reason = (f"annotation[{k}] inconsistent "
                                     f"target register at {offset:#x}")
                    return result
            elif code == _A_AMEM:
                if not isinstance(operand, Mem):
                    result.reason = (f"annotation[{k}] expected memory "
                                     f"operand at {offset:#x}")
                    return result
                captured_mem = operand
            else:  # _A_AREG
                if not isinstance(operand, int):
                    result.reason = (f"annotation[{k}] expected register "
                                     f"at {offset:#x}")
                    return result
                if payload in result.anchor_regs and \
                        result.anchor_regs[payload] != operand:
                    result.reason = (f"annotation[{k}] inconsistent "
                                     f"anchor register at {offset:#x}")
                    return result
                result.anchor_regs[payload] = operand
        interior.append(offset)
    result.matched = True
    result.end_index = index + compiled.size
    result.target_reg = captured_reg
    result.anchor_mem = captured_mem
    return result


# -- byte-template matching -------------------------------------------------
#
# On DX86's fixed-per-opcode encoding an annotation is *almost* a fixed
# byte string: every atom except trap rel32s and captured registers /
# memory operands (and the magic placeholders, which are themselves
# fixed 64-bit constants before rewriting) encodes to known bytes at
# known offsets — even LocalTo branches, whose rel32 is a constant
# distance inside the template.  ``compile_fast`` folds all of that into
# one (want, mask) big-int pair over the template's byte span, so the
# verifier accepts a well-formed annotation with a single masked
# comparison against the raw text plus a handful of field checks,
# instead of walking the pattern row by row.  A fast-path miss proves
# nothing by itself — callers fall back to :func:`match_compiled`, which
# produces the authoritative verdict and the rejection reason.
#
# Soundness of reading raw text: the fast path is only consulted at a
# decode-once stream index, and no template contains a non-fall-through
# instruction, so if the bytes at ``stream[index]`` match the template
# then the descent necessarily decoded exactly the template's
# instructions at contiguous offsets — the byte view and the stream
# view cannot disagree.

#: Operand field layouts per signature: operand position -> (byte
#: offset from the opcode byte, field width).
_FIELD_OFFSETS = {
    "": (), "r": ((1, 1),), "rr": ((1, 1), (2, 1)),
    "ri64": ((1, 1), (2, 8)), "ri32": ((1, 1), (2, 4)),
    "rm": ((1, 1), (2, 7)), "mr": ((1, 7), (8, 1)),
    "mi32": ((1, 7), (8, 4)), "rel32": ((1, 4),), "i8": ((1, 1),),
    "i16": ((1, 2),), "i32": ((1, 4),),
}

_UNPACK_REL32 = struct.Struct("<i").unpack_from


@dataclass(frozen=True)
class FastPattern:
    """A template flattened to a masked byte image.

    ``want``/``mask`` are little-endian big-ints over ``byte_len``
    bytes; ``deltas`` are per-row byte offsets from the head;
    ``magic``/``traps``/``captures`` describe the variable fields the
    masked comparison cannot settle.
    """

    size: int
    byte_len: int
    want: int
    mask: int
    deltas: tuple
    magic: tuple        # ((imm-field delta, magic name), ...)
    traps: tuple        # ((rel32-field delta, row-end delta, code), ...)
    captures: tuple     # ((row, operand pos, atom code, payload), ...)


def compile_fast(pattern: Pattern) -> FastPattern:
    """Flatten ``pattern`` into a :class:`FastPattern` byte template."""
    lengths = [SPECS[pinstr.op].length for pinstr in pattern]
    deltas = [0]
    for length in lengths:
        deltas.append(deltas[-1] + length)
    want = bytearray()
    mask = bytearray()
    magic: list = []
    traps: list = []
    captures: list = []
    for k, pinstr in enumerate(pattern):
        offs = _FIELD_OFFSETS[SPECS[pinstr.op].sig]
        operands: list = []
        var_fields: list = []
        for pos, atom in enumerate(pinstr.atoms):
            start, width = offs[pos]
            if isinstance(atom, Mag):
                operands.append(MAGIC[atom.name])
                magic.append((deltas[k] + start, atom.name))
            elif isinstance(atom, ImmAtom):
                operands.append(atom.value)
            elif isinstance(atom, TrapTo):
                operands.append(0)
                var_fields.append((start, width))
                traps.append((deltas[k] + start, deltas[k + 1],
                              atom.code))
            elif isinstance(atom, LocalTo):
                # constant intra-template distance
                operands.append(deltas[atom.index] - deltas[k + 1])
            elif isinstance(atom, TargetReg):
                operands.append(0)
                var_fields.append((start, width))
                captures.append((k, pos, _A_TREG, None))
            elif isinstance(atom, AnchorMem):
                operands.append(Mem())
                var_fields.append((start, width))
                captures.append((k, pos, _A_AMEM, None))
            elif isinstance(atom, AnchorReg):
                operands.append(0)
                var_fields.append((start, width))
                captures.append((k, pos, _A_AREG, atom.index))
            else:
                operands.append(atom)
        row = bytearray(
            encode_instruction(Instruction(pinstr.op, *operands)))
        row_mask = bytearray(b"\xff" * len(row))
        for start, width in var_fields:
            zero = b"\x00" * width
            row[start:start + width] = zero
            row_mask[start:start + width] = zero
        want += row
        mask += row_mask
    return FastPattern(len(pattern), deltas[-1],
                       int.from_bytes(bytes(want), "little"),
                       int.from_bytes(bytes(mask), "little"),
                       tuple(deltas[:-1]), tuple(magic), tuple(traps),
                       tuple(captures))


def match_fast(fast: FastPattern, text: bytes, stream, index: int,
               trap_pads: Dict[int, int]) -> Optional[MatchResult]:
    """Byte-template match of ``fast`` at ``stream[index]``.

    Returns a successful :class:`MatchResult` identical to what
    :func:`match_compiled` would produce on the source pattern, or
    ``None`` when the fast path cannot confirm a match (callers must
    then consult the row-by-row matcher for the verdict and reason).
    """
    if index + fast.size > len(stream):
        return None
    off = stream[index][0]
    end = off + fast.byte_len
    if end > len(text):
        return None
    if int.from_bytes(text[off:end], "little") & fast.mask != fast.want:
        return None
    for field_delta, end_delta, code in fast.traps:
        rel = _UNPACK_REL32(text, off + field_delta)[0]
        if trap_pads.get(off + end_delta + rel) != code:
            return None
    target_reg: Optional[int] = None
    anchor_mem: Optional[Mem] = None
    anchor_regs: dict = {}
    for row, pos, code, payload in fast.captures:
        operand = stream[index + row][1].operands[pos]
        if code == _A_TREG:
            if operand in RESERVED_REGS or operand == RSP:
                return None
            if target_reg is None:
                target_reg = operand
            elif target_reg != operand:
                return None
        elif code == _A_AMEM:
            anchor_mem = operand
        else:  # _A_AREG
            if payload in anchor_regs and anchor_regs[payload] != operand:
                return None
            anchor_regs[payload] = operand
    return MatchResult(
        matched=True, end_index=index + fast.size,
        target_reg=target_reg, anchor_mem=anchor_mem,
        magic_slots=[(off + d, name) for d, name in fast.magic],
        interior_offsets=[off + d for d in fast.deltas],
        anchor_regs=anchor_regs)


# The interpretive reference matcher lives in repro.policy.reference;
# the production verifier dispatches only through the compiled and fast
# matchers above.
