"""Parametric annotation templates.

Each template is a list of :class:`PatternInstr` — opcode plus operand
*atoms*.  The compiler's instrumentation passes **emit** a template
(instantiating atoms with concrete operands and labels); the in-enclave
verifier **matches** decoded instructions against the same template.
Because both directions derive from one definition, the producer and
consumer cannot drift apart — the property the paper gets by publishing
the consumer's checking rules.

Atom kinds
----------
* plain ``int``          — exact register index
* plain :class:`Mem`     — exact memory operand
* :class:`Mag`           — magic 64-bit placeholder (``MOV r, imm64``)
* :class:`ImmAtom`       — exact immediate value
* :class:`TrapTo`        — rel32 that must land on the trap pad for a
                           violation code
* :class:`LocalTo`       — rel32 to another index of the same template
* :class:`TargetReg`     — captured register (the indirect-branch target);
                           must be consistent across the template and must
                           not be RSP or an annotation-reserved register
* :class:`AnchorMem`     — captured memory operand that must equal the
                           guarded store's destination
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.encoding import MOV_RI_IMM_OFFSET
from ..isa.instructions import (
    Instruction, Label, LabelDef, Mem, Op, SPECS,
)
from ..isa.registers import R13, R14, R15, RSP, RESERVED_REGS
from .magic import (
    MAGIC, MARKER_VALUE, trap_label,
    VIOL_P1, VIOL_P2, VIOL_P3, VIOL_P4,
    VIOL_P5_TARGET, VIOL_P5_RET, VIOL_P5_SHADOW, VIOL_P6,
)
from .policies import PolicySet


class AnnotationKind:
    """Discriminates what a matched annotation licenses."""

    STORE_GUARD = "store_guard"
    RSP_GUARD = "rsp_guard"
    INDIRECT = "indirect_branch"
    PROLOGUE = "shadow_prologue"
    EPILOGUE = "shadow_epilogue"
    P6_GUARD = "p6_guard"


@dataclass(frozen=True)
class Mag:
    name: str


@dataclass(frozen=True)
class ImmAtom:
    value: int


@dataclass(frozen=True)
class TrapTo:
    code: int


@dataclass(frozen=True)
class LocalTo:
    index: int


@dataclass(frozen=True)
class TargetReg:
    pass


@dataclass(frozen=True)
class AnchorMem:
    pass


@dataclass(frozen=True)
class AnchorReg:
    """Register operand ``index`` of the guarded anchor instruction —
    lets custom policies (repro.policy.custom) reference the anchor's
    own operands inside the guard."""

    index: int


@dataclass(frozen=True)
class PatternInstr:
    op: int
    atoms: tuple


def _p(op: int, *atoms) -> PatternInstr:
    return PatternInstr(op, atoms)


Pattern = List[PatternInstr]


# ---------------------------------------------------------------------------
# Template definitions
# ---------------------------------------------------------------------------

def store_guard_pattern(policies: PolicySet) -> Pattern:
    """Guard before every explicit memory store (P1, P3, P4).

    One range check, exactly Fig. 5's shape.  The paper notes that "the
    instrumentation to enforce P1/P2 can be reused to enforce P3/P4 (via
    different boundaries), thus the performance overhead caused by P3/P4
    is negligible" — we implement precisely that: the annotation always
    compares against the ``p1_lo``/``p1_hi`` placeholders, and the
    in-enclave rewriter *tightens* the bounds when P3/P4 are enabled
    (the enclave layout places the critical region, the shadow stack,
    the branch map and the code pages in one contiguous band below the
    stack/heap data band, so excluding them is a lower-bound bump).
    """
    del policies  # shape is policy-independent; bounds come from the
    #               rewriter (see repro.core.rewriter.build_value_map)
    return [
        _p(Op.LEA, R15, AnchorMem()),
        _p(Op.MOV_RI, R14, Mag("p1_lo")),
        _p(Op.CMP_RR, R15, R14),
        _p(Op.JB, TrapTo(VIOL_P1)),
        _p(Op.MOV_RI, R14, Mag("p1_hi")),
        _p(Op.CMP_RR, R15, R14),
        _p(Op.JAE, TrapTo(VIOL_P1)),
    ]


def rsp_guard_pattern() -> Pattern:
    """Check RSP validity after an explicit stack-pointer write (P2)."""
    return [
        _p(Op.MOV_RI, R14, Mag("stack_lo")),
        _p(Op.CMP_RR, RSP, R14),
        _p(Op.JB, TrapTo(VIOL_P2)),
        _p(Op.MOV_RI, R14, Mag("stack_hi")),
        _p(Op.CMP_RR, RSP, R14),
        _p(Op.JA, TrapTo(VIOL_P2)),
    ]


def indirect_branch_pattern() -> Pattern:
    """Forward-edge CFI check before CALL/JMP through a register (P5).

    The target must fall inside the loaded code and its byte in the
    loader-built valid-target map must be 1 — the runtime equivalent of
    "the target is always on the (indirect-branch) list".
    """
    return [
        _p(Op.MOV_RR, R14, TargetReg()),
        _p(Op.MOV_RI, R15, Mag("code_base")),
        _p(Op.SUB_RR, R14, R15),
        _p(Op.MOV_RI, R15, Mag("code_len")),
        _p(Op.CMP_RR, R14, R15),
        _p(Op.JAE, TrapTo(VIOL_P5_TARGET)),
        _p(Op.MOV_RI, R15, Mag("brmap_base")),
        _p(Op.ADD_RR, R15, R14),
        _p(Op.LDB, R14, Mem(R15)),
        _p(Op.CMP_RI, R14, ImmAtom(1)),
        _p(Op.JNE, TrapTo(VIOL_P5_TARGET)),
    ]


def shadow_prologue_pattern(mt_safe: bool = False) -> Pattern:
    """Push the return address onto the shadow stack at function entry
    (P5 backward edge).

    The default variant keeps the shadow-stack pointer in a loader
    cell.  The ``mt_safe`` variant (§VII) keeps it in the reserved R13
    register — per-thread by construction, immune to cross-thread
    TOCTOU on the metadata.
    """
    if mt_safe:
        return [
            _p(Op.MOV_RI, R14, Mag("ss_top")),
            _p(Op.CMP_RR, R13, R14),
            _p(Op.JAE, TrapTo(VIOL_P5_SHADOW)),
            _p(Op.MOV_RM, R14, Mem(RSP)),
            _p(Op.MOV_MR, Mem(R13), R14),
            _p(Op.ADD_RI, R13, ImmAtom(8)),
        ]
    return [
        _p(Op.MOV_RI, R14, Mag("ss_cell")),
        _p(Op.MOV_RM, R15, Mem(R14)),
        _p(Op.MOV_RI, R13, Mag("ss_top")),
        _p(Op.CMP_RR, R15, R13),
        _p(Op.JAE, TrapTo(VIOL_P5_SHADOW)),
        _p(Op.MOV_RM, R13, Mem(RSP)),
        _p(Op.MOV_MR, Mem(R15), R13),
        _p(Op.ADD_RI, R15, ImmAtom(8)),
        _p(Op.MOV_MR, Mem(R14), R15),
    ]


def shadow_epilogue_pattern(mt_safe: bool = False) -> Pattern:
    """Pop the shadow stack and compare with the live return address
    immediately before RET (P5 backward edge)."""
    if mt_safe:
        return [
            _p(Op.SUB_RI, R13, ImmAtom(8)),
            _p(Op.MOV_RI, R14, Mag("ss_base")),
            _p(Op.CMP_RR, R13, R14),
            _p(Op.JB, TrapTo(VIOL_P5_SHADOW)),
            _p(Op.MOV_RM, R14, Mem(R13)),
            _p(Op.MOV_RM, R15, Mem(RSP)),
            _p(Op.CMP_RR, R14, R15),
            _p(Op.JNE, TrapTo(VIOL_P5_RET)),
        ]
    return [
        _p(Op.MOV_RI, R14, Mag("ss_cell")),
        _p(Op.MOV_RM, R15, Mem(R14)),
        _p(Op.SUB_RI, R15, ImmAtom(8)),
        _p(Op.MOV_RI, R13, Mag("ss_base")),
        _p(Op.CMP_RR, R15, R13),
        _p(Op.JB, TrapTo(VIOL_P5_SHADOW)),
        _p(Op.MOV_MR, Mem(R14), R15),
        _p(Op.MOV_RM, R13, Mem(R15)),
        _p(Op.MOV_RM, R14, Mem(RSP)),
        _p(Op.CMP_RR, R13, R14),
        _p(Op.JNE, TrapTo(VIOL_P5_RET)),
    ]


def p6_guard_pattern() -> Pattern:
    """HyperRace SSA-marker inspection at every basic-block entry (P6).

    Fast path (marker intact — no AEX since the last check): load,
    compare, one taken branch.  Slow path (marker clobbered by an AEX
    register dump): bump the software AEX counter, abort past the
    threshold, and restore the marker.
    """
    return [
        _p(Op.MOV_RI, R14, Mag("ssa_marker")),          # 0
        _p(Op.MOV_RM, R15, Mem(R14)),                   # 1
        _p(Op.CMP_RI, R15, ImmAtom(MARKER_VALUE)),      # 2
        _p(Op.JE, LocalTo(13)),                         # 3  intact: done
        _p(Op.MOV_RI, R14, Mag("aex_cnt")),             # 4
        _p(Op.MOV_RM, R15, Mem(R14)),                   # 5
        _p(Op.ADD_RI, R15, ImmAtom(1)),                 # 6
        _p(Op.MOV_MR, Mem(R14), R15),                   # 7
        _p(Op.MOV_RI, R13, Mag("aex_threshold")),       # 8
        _p(Op.CMP_RR, R15, R13),                        # 9
        _p(Op.JA, TrapTo(VIOL_P6)),                     # 10
        _p(Op.MOV_RI, R14, Mag("ssa_marker")),          # 11 reload
        _p(Op.MOV_MI, Mem(R14), ImmAtom(MARKER_VALUE)),  # 12 refresh
    ]


# ---------------------------------------------------------------------------
# Emission (producer side)
# ---------------------------------------------------------------------------

def emit_pattern(pattern: Pattern, label_alloc,
                 anchor_mem: Optional[Mem] = None,
                 target_reg: Optional[int] = None,
                 anchor_instr: Optional[Instruction] = None) -> list:
    """Instantiate ``pattern`` into assembler items.

    ``label_alloc(tag)`` must return fresh local label names.  TrapTo
    atoms become references to the program-wide trap pads (emitted by
    the linker); LocalTo atoms become fresh local labels.
    """
    local_labels: Dict[int, str] = {}
    for pinstr in pattern:
        for atom in pinstr.atoms:
            if isinstance(atom, LocalTo) and atom.index not in local_labels:
                local_labels[atom.index] = label_alloc("ann")
    items = []
    for idx, pinstr in enumerate(pattern):
        if idx in local_labels:
            items.append(LabelDef(local_labels[idx]))
        operands = []
        for atom in pinstr.atoms:
            if isinstance(atom, Mag):
                operands.append(MAGIC[atom.name])
            elif isinstance(atom, ImmAtom):
                operands.append(atom.value)
            elif isinstance(atom, TrapTo):
                operands.append(Label(trap_label(atom.code)))
            elif isinstance(atom, LocalTo):
                operands.append(Label(local_labels[atom.index]))
            elif isinstance(atom, TargetReg):
                if target_reg is None:
                    raise ValueError("pattern needs target_reg")
                operands.append(target_reg)
            elif isinstance(atom, AnchorMem):
                if anchor_mem is None:
                    raise ValueError("pattern needs anchor_mem")
                operands.append(anchor_mem)
            elif isinstance(atom, AnchorReg):
                if anchor_instr is None:
                    raise ValueError("pattern needs anchor_instr")
                operands.append(anchor_instr.operands[atom.index])
            else:
                operands.append(atom)
        items.append(Instruction(pinstr.op, *operands))
    if len(pattern) in local_labels:
        items.append(LabelDef(local_labels[len(pattern)]))
    return items


def pattern_length(pattern: Pattern) -> int:
    """Encoded byte length of an instantiated pattern."""
    return sum(SPECS[pinstr.op].length for pinstr in pattern)


# ---------------------------------------------------------------------------
# Matching (consumer side)
# ---------------------------------------------------------------------------

@dataclass
class MatchResult:
    """Outcome of matching one template at one stream position."""

    matched: bool
    reason: str = ""
    end_index: int = 0
    target_reg: Optional[int] = None
    anchor_mem: Optional[Mem] = None
    #: (absolute text offset of imm64 field, magic name) for the rewriter.
    magic_slots: List[Tuple[int, str]] = field(default_factory=list)
    #: Text offsets of every instruction consumed by the match.
    interior_offsets: List[int] = field(default_factory=list)
    #: AnchorReg captures: pattern atom index -> observed register; the
    #: caller must compare them against the anchor's actual operands.
    anchor_regs: dict = field(default_factory=dict)


def match_pattern(pattern: Pattern, stream, index: int,
                  trap_pads: Dict[int, int]) -> MatchResult:
    """Match ``pattern`` against ``stream[index:]``.

    ``stream`` is a list of ``(offset, Instruction)`` in address order
    (as produced by the recursive-descent disassembler);``trap_pads``
    maps text offsets of TRAP pads to their violation codes.
    """
    result = MatchResult(matched=False)
    captured_reg: Optional[int] = None
    captured_mem: Optional[Mem] = None
    if index + len(pattern) > len(stream):
        result.reason = "stream too short for annotation"
        return result
    for k, pinstr in enumerate(pattern):
        offset, instr = stream[index + k]
        if instr.op != pinstr.op:
            result.reason = (f"annotation[{k}] opcode mismatch at "
                             f"{offset:#x}")
            return result
        for pos, atom in enumerate(pinstr.atoms):
            operand = instr.operands[pos]
            if isinstance(atom, Mag):
                if operand != MAGIC[atom.name]:
                    result.reason = (f"annotation[{k}] expected magic "
                                     f"{atom.name} at {offset:#x}")
                    return result
                result.magic_slots.append(
                    (offset + MOV_RI_IMM_OFFSET, atom.name))
            elif isinstance(atom, ImmAtom):
                if operand != atom.value:
                    result.reason = (f"annotation[{k}] bad immediate at "
                                     f"{offset:#x}")
                    return result
            elif isinstance(atom, TrapTo):
                target = offset + instr.length + operand
                if trap_pads.get(target) != atom.code:
                    result.reason = (f"annotation[{k}] does not trap to "
                                     f"pad {atom.code} at {offset:#x}")
                    return result
            elif isinstance(atom, LocalTo):
                want_index = index + atom.index
                if want_index >= len(stream):
                    result.reason = (f"annotation[{k}] local target past "
                                     f"stream end")
                    return result
                target = offset + instr.length + operand
                if target != stream[want_index][0]:
                    result.reason = (f"annotation[{k}] bad local target at "
                                     f"{offset:#x}")
                    return result
            elif isinstance(atom, TargetReg):
                if not isinstance(operand, int) or \
                        operand in RESERVED_REGS or operand == RSP:
                    result.reason = (f"annotation[{k}] illegal target "
                                     f"register at {offset:#x}")
                    return result
                if captured_reg is None:
                    captured_reg = operand
                elif captured_reg != operand:
                    result.reason = (f"annotation[{k}] inconsistent target "
                                     f"register at {offset:#x}")
                    return result
            elif isinstance(atom, AnchorMem):
                if not isinstance(operand, Mem):
                    result.reason = (f"annotation[{k}] expected memory "
                                     f"operand at {offset:#x}")
                    return result
                captured_mem = operand
            elif isinstance(atom, AnchorReg):
                if not isinstance(operand, int):
                    result.reason = (f"annotation[{k}] expected register "
                                     f"at {offset:#x}")
                    return result
                if atom.index in result.anchor_regs and \
                        result.anchor_regs[atom.index] != operand:
                    result.reason = (f"annotation[{k}] inconsistent "
                                     f"anchor register at {offset:#x}")
                    return result
                result.anchor_regs[atom.index] = operand
            else:
                if operand != atom:
                    result.reason = (f"annotation[{k}] operand mismatch at "
                                     f"{offset:#x}")
                    return result
        result.interior_offsets.append(offset)
    result.matched = True
    result.end_index = index + len(pattern)
    result.target_reg = captured_reg
    result.anchor_mem = captured_mem
    return result
