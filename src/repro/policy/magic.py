"""Placeholder immediates and violation codes.

The code generator does not know where the loader will place anything,
so annotations are emitted with *magic* 64-bit immediates.  The paper
uses ``0x3FFFFFFFFFFFFFFF`` / ``0x4FFFFFFFFFFFFFFF`` for the store-guard
bounds (Fig. 5); we keep that flavour and extend it to a family —
``0x3FFF…FF00|k`` for lower bounds, ``0x4FFF…FF00|k`` for upper bounds,
``0x5FFF…FF00|k`` for non-bound values — one per quantity the in-enclave
immediate rewriter must resolve.
"""

from __future__ import annotations

_LO = 0x3FFFFFFFFFFFFF00
_HI = 0x4FFFFFFFFFFFFF00
_VAL = 0x5FFFFFFFFFFFFF00

#: name -> placeholder value.  The rewriter maps each name to a concrete
#: address/value derived from the enclave layout and the loaded binary.
MAGIC = {
    "p1_lo": _LO | 0x1,          # ELRANGE lower bound (P1)
    "p1_hi": _HI | 0x1,          # ELRANGE upper bound (P1)
    "crit_lo": _LO | 0x3,        # SSA/TCS/TLS+loader-metadata lower (P3)
    "crit_hi": _HI | 0x3,
    "code_lo": _LO | 0x4,        # target code pages lower (P4, DEP)
    "code_hi": _HI | 0x4,
    "stack_lo": _LO | 0x2,       # legal RSP range (P2)
    "stack_hi": _HI | 0x2,
    "ss_cell": _VAL | 0x5,       # shadow-stack pointer cell address
    "ss_base": _VAL | 0x6,       # first shadow slot
    "ss_top": _VAL | 0x7,        # shadow limit (overflow check)
    "code_base": _VAL | 0x8,     # loaded code base (P5 target check)
    "code_len": _VAL | 0x9,      # loaded code length (P5 target check)
    "brmap_base": _VAL | 0xA,    # valid-branch-target byte map base
    "ssa_marker": _VAL | 0xB,    # HyperRace marker cell address (P6)
    "aex_cnt": _VAL | 0xC,       # software AEX counter cell (P6)
    "aex_threshold": _VAL | 0xD,  # AEX abort threshold value (P6)
}

MAGIC_NAMES = {value: name for name, value in MAGIC.items()}

#: The HyperRace SSA marker constant (fits a positive imm32).
MARKER_VALUE = 0x5A5AD5D5


def is_magic(value: int) -> bool:
    return value in MAGIC_NAMES


def magic_name(value: int) -> str:
    return MAGIC_NAMES[value]


# -- runtime violation codes (TRAP operands) --------------------------------

VIOL_P1 = 1          # store outside ELRANGE
VIOL_P2 = 2          # RSP escaped the stack region
VIOL_P3 = 3          # store into security-critical region
VIOL_P4 = 4          # store into code pages (self-modification)
VIOL_P5_TARGET = 5   # indirect branch to unlisted target
VIOL_P5_RET = 6      # return-address mismatch with shadow stack
VIOL_P5_SHADOW = 7   # shadow-stack overflow/underflow
VIOL_P6 = 8          # AEX frequency above threshold
VIOL_P0 = 9          # interface abuse (output budget, bad OCall args);
                     # enforced by the bootstrap wrappers, no trap pad

VIOLATION_NAMES = {
    VIOL_P0: "P0: interface/entropy constraint",
    VIOL_P1: "P1: out-of-enclave store",
    VIOL_P2: "P2: stack-pointer escape",
    VIOL_P3: "P3: critical-data overwrite",
    VIOL_P4: "P4: code-page write (DEP)",
    VIOL_P5_TARGET: "P5: illegal indirect-branch target",
    VIOL_P5_RET: "P5: corrupted return address",
    VIOL_P5_SHADOW: "P5: shadow-stack bounds",
    VIOL_P6: "P6: AEX threshold exceeded",
}

#: Codes that get in-binary trap pads (P0 is bootstrap-enforced).
ALL_VIOLATION_CODES = tuple(code for code in sorted(VIOLATION_NAMES)
                            if code != VIOL_P0)


def trap_label(code: int) -> str:
    """Label of the global trap pad for violation ``code``."""
    return f"__deflection_viol_{code}"
