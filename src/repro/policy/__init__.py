"""The security-policy contract between code producer and code consumer.

The paper's producer instruments the target binary with *security
annotations* — short, rigidly-shaped instruction sequences — and the
consumer's verifier pattern-checks them instruction by instruction
(§IV-C/§IV-D).  Both sides must agree on the exact shapes: this package
defines them once as parametric templates, from which the compiler
instantiates concrete code and against which the verifier matches
decoded bytes.  The placeholder immediates (Fig. 5's
``0x3FFFFFFFFFFFFFFF``/``0x4FFFFFFFFFFFFFFF``) live here too; the
in-enclave rewriter replaces them with real enclave addresses after
verification succeeds.
"""

from .policies import PolicySet
from .magic import (
    MAGIC, MAGIC_NAMES, MARKER_VALUE, is_magic, magic_name,
    VIOL_P1, VIOL_P2, VIOL_P3, VIOL_P4,
    VIOL_P5_TARGET, VIOL_P5_RET, VIOL_P5_SHADOW, VIOL_P6,
    VIOLATION_NAMES, trap_label,
)
from .templates import (
    AnnotationKind, Pattern,
    store_guard_pattern, rsp_guard_pattern, indirect_branch_pattern,
    shadow_prologue_pattern, shadow_epilogue_pattern, p6_guard_pattern,
    MatchResult,
)
from .emit import emit_pattern, pattern_length
from .reference import match_pattern

__all__ = [
    "PolicySet",
    "MAGIC", "MAGIC_NAMES", "MARKER_VALUE", "is_magic", "magic_name",
    "VIOL_P1", "VIOL_P2", "VIOL_P3", "VIOL_P4",
    "VIOL_P5_TARGET", "VIOL_P5_RET", "VIOL_P5_SHADOW", "VIOL_P6",
    "VIOLATION_NAMES", "trap_label",
    "AnnotationKind", "Pattern",
    "store_guard_pattern", "rsp_guard_pattern", "indirect_branch_pattern",
    "shadow_prologue_pattern", "shadow_epilogue_pattern",
    "p6_guard_pattern", "emit_pattern", "pattern_length",
    "match_pattern", "MatchResult",
]
