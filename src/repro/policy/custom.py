"""Developer-defined policies (§V-A's plug-in API, §III's quick patch).

The paper stresses that DEFLECTION is *flexible*: "assembling new
policies into [the] current design can be very straightforward" and
"we provide high-level APIs that allow the developers to implement
their instrumentation and validation passes and plug them into the
loader".  A :class:`CustomPolicy` is exactly that: an anchor predicate
(which instructions need a guard), a parametric guard pattern built
from the same atom DSL as the built-in annotations, and a violation
code.  The producer's pass emits the guard before every anchor; the
verifier demands and pattern-checks it; the loader's trap pads include
the custom code.

Every custom pattern must open with ``MOV R14, <marker>`` where the
marker comes from :func:`marker_value` — a distinctive imm64 in a band
disjoint from the built-in magic placeholders, giving the verifier an
unambiguous dispatch byte sequence (markers are plain constants, not
rewriter slots).

Shipped example: :func:`div_by_zero_guard`, the §III "emergency quick
fix" scenario — a service provider learns its binary can fault on a
division and pushes a policy that traps the condition cleanly, without
touching the service source.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Tuple

from ..isa.instructions import Instruction, Op
from ..isa.registers import R14
from .templates import (
    AnchorReg, ImmAtom, Pattern, PatternInstr, TrapTo,
)

#: Custom violation codes live in [16, 32); built-ins use [1, 9].
CUSTOM_CODE_MIN = 16
CUSTOM_CODE_MAX = 31

_MARKER_BAND = 0x6FFFFFFFFFFF0000


def marker_value(name: str) -> int:
    """Deterministic, distinctive imm64 marker for policy ``name``."""
    tag = int.from_bytes(hashlib.sha256(name.encode()).digest()[:2],
                         "big")
    return _MARKER_BAND | tag


@dataclass(frozen=True)
class CustomPolicy:
    """One pluggable instrumentation + validation pass."""

    name: str
    violation_code: int
    anchor: Callable[[Instruction], bool]
    pattern: Tuple[PatternInstr, ...]

    def __post_init__(self):
        if not CUSTOM_CODE_MIN <= self.violation_code <= CUSTOM_CODE_MAX:
            raise ValueError(
                f"custom violation codes must be in "
                f"[{CUSTOM_CODE_MIN}, {CUSTOM_CODE_MAX}]")
        first = self.pattern[0]
        if first.op != Op.MOV_RI or first.atoms[0] != R14 or \
                not isinstance(first.atoms[1], ImmAtom) or \
                first.atoms[1].value != self.marker:
            raise ValueError(
                "custom patterns must open with MOV R14, marker_value("
                "name) so the verifier can dispatch on them")

    @property
    def marker(self) -> int:
        return marker_value(self.name)

    def guard_pattern(self) -> Pattern:
        return list(self.pattern)


def _p(op: int, *atoms) -> PatternInstr:
    return PatternInstr(op, atoms)


def div_by_zero_guard(violation_code: int = 16) -> CustomPolicy:
    """Trap division/modulo by zero before the hardware faults.

    Guards every register-divisor DIV/MOD: if the divisor is zero the
    binary exits through a trap pad with a dedicated code instead of
    taking an uncontrolled #DE-style fault inside the enclave.
    """
    name = "div_by_zero_guard"

    def is_reg_division(ins: Instruction) -> bool:
        return ins.op in (Op.DIV_RR, Op.MOD_RR)

    pattern = (
        _p(Op.MOV_RI, R14, ImmAtom(marker_value(name))),
        _p(Op.CMP_RI, AnchorReg(1), ImmAtom(0)),
        _p(Op.JE, TrapTo(violation_code)),
    )
    return CustomPolicy(name, violation_code, is_reg_division, pattern)
