"""Producer-side template instantiation.

Untrusted: this module runs in the compiler's instrumentation passes,
outside the enclave.  Splitting it out of :mod:`repro.policy.templates`
keeps the emission machinery off the consumer's TCB accounting — the
verifier only ever matches templates, it never emits them.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.instructions import Instruction, Label, LabelDef, Mem, SPECS
from .magic import MAGIC, trap_label
from .templates import (
    AnchorMem, AnchorReg, ImmAtom, LocalTo, Mag, Pattern, TargetReg, TrapTo,
)


def emit_pattern(pattern: Pattern, label_alloc,
                 anchor_mem: Optional[Mem] = None,
                 target_reg: Optional[int] = None,
                 anchor_instr: Optional[Instruction] = None) -> list:
    """Instantiate ``pattern`` into assembler items.

    ``label_alloc(tag)`` must return fresh local label names.  TrapTo
    atoms become references to the program-wide trap pads (emitted by
    the linker); LocalTo atoms become fresh local labels.
    """
    local_labels: Dict[int, str] = {}
    for pinstr in pattern:
        for atom in pinstr.atoms:
            if isinstance(atom, LocalTo) and atom.index not in local_labels:
                local_labels[atom.index] = label_alloc("ann")
    items = []
    for idx, pinstr in enumerate(pattern):
        if idx in local_labels:
            items.append(LabelDef(local_labels[idx]))
        operands = []
        for atom in pinstr.atoms:
            if isinstance(atom, Mag):
                operands.append(MAGIC[atom.name])
            elif isinstance(atom, ImmAtom):
                operands.append(atom.value)
            elif isinstance(atom, TrapTo):
                operands.append(Label(trap_label(atom.code)))
            elif isinstance(atom, LocalTo):
                operands.append(Label(local_labels[atom.index]))
            elif isinstance(atom, TargetReg):
                if target_reg is None:
                    raise ValueError("pattern needs target_reg")
                operands.append(target_reg)
            elif isinstance(atom, AnchorMem):
                if anchor_mem is None:
                    raise ValueError("pattern needs anchor_mem")
                operands.append(anchor_mem)
            elif isinstance(atom, AnchorReg):
                if anchor_instr is None:
                    raise ValueError("pattern needs anchor_instr")
                operands.append(anchor_instr.operands[atom.index])
            else:
                operands.append(atom)
        items.append(Instruction(pinstr.op, *operands))
    if len(pattern) in local_labels:
        items.append(LabelDef(local_labels[len(pattern)]))
    return items


def pattern_length(pattern: Pattern) -> int:
    """Encoded byte length of an instantiated pattern."""
    return sum(SPECS[pinstr.op].length for pinstr in pattern)
