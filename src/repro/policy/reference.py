"""Reference (interpretive) template matcher.

The verifier's hot loop uses the compiled/fast matchers in
:mod:`repro.policy.templates`; this interpretive walk over the atom
dataclasses is kept as the readable specification and as the matcher
the legacy oracle pipeline runs.  It lives outside the templates
module so the consumer TCB accounting covers only the template
definitions and the matchers the production verifier actually
dispatches through.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.encoding import MOV_RI_IMM_OFFSET
from ..isa.instructions import Mem
from ..isa.registers import RESERVED_REGS, RSP
from .magic import MAGIC
from .templates import (
    AnchorMem, AnchorReg, ImmAtom, LocalTo, Mag, MatchResult, Pattern,
    TargetReg, TrapTo,
)


def match_pattern(pattern: Pattern, stream, index: int,
                  trap_pads: Dict[int, int]) -> MatchResult:
    """Match ``pattern`` against ``stream[index:]``.

    ``stream`` is a list of ``(offset, Instruction)`` in address order
    (as produced by the recursive-descent disassembler);``trap_pads``
    maps text offsets of TRAP pads to their violation codes.
    """
    result = MatchResult(matched=False)
    captured_reg: Optional[int] = None
    captured_mem: Optional[Mem] = None
    if index + len(pattern) > len(stream):
        result.reason = "stream too short for annotation"
        return result
    for k, pinstr in enumerate(pattern):
        offset, instr = stream[index + k]
        if instr.op != pinstr.op:
            result.reason = (f"annotation[{k}] opcode mismatch at "
                             f"{offset:#x}")
            return result
        for pos, atom in enumerate(pinstr.atoms):
            operand = instr.operands[pos]
            if isinstance(atom, Mag):
                if operand != MAGIC[atom.name]:
                    result.reason = (f"annotation[{k}] expected magic "
                                     f"{atom.name} at {offset:#x}")
                    return result
                result.magic_slots.append(
                    (offset + MOV_RI_IMM_OFFSET, atom.name))
            elif isinstance(atom, ImmAtom):
                if operand != atom.value:
                    result.reason = (f"annotation[{k}] bad immediate at "
                                     f"{offset:#x}")
                    return result
            elif isinstance(atom, TrapTo):
                target = offset + instr.length + operand
                if trap_pads.get(target) != atom.code:
                    result.reason = (f"annotation[{k}] does not trap to "
                                     f"pad {atom.code} at {offset:#x}")
                    return result
            elif isinstance(atom, LocalTo):
                want_index = index + atom.index
                if want_index >= len(stream):
                    result.reason = (f"annotation[{k}] local target past "
                                     f"stream end")
                    return result
                target = offset + instr.length + operand
                if target != stream[want_index][0]:
                    result.reason = (f"annotation[{k}] bad local target at "
                                     f"{offset:#x}")
                    return result
            elif isinstance(atom, TargetReg):
                if not isinstance(operand, int) or \
                        operand in RESERVED_REGS or operand == RSP:
                    result.reason = (f"annotation[{k}] illegal target "
                                     f"register at {offset:#x}")
                    return result
                if captured_reg is None:
                    captured_reg = operand
                elif captured_reg != operand:
                    result.reason = (f"annotation[{k}] inconsistent target "
                                     f"register at {offset:#x}")
                    return result
            elif isinstance(atom, AnchorMem):
                if not isinstance(operand, Mem):
                    result.reason = (f"annotation[{k}] expected memory "
                                     f"operand at {offset:#x}")
                    return result
                captured_mem = operand
            elif isinstance(atom, AnchorReg):
                if not isinstance(operand, int):
                    result.reason = (f"annotation[{k}] expected register "
                                     f"at {offset:#x}")
                    return result
                if atom.index in result.anchor_regs and \
                        result.anchor_regs[atom.index] != operand:
                    result.reason = (f"annotation[{k}] inconsistent "
                                     f"anchor register at {offset:#x}")
                    return result
                result.anchor_regs[atom.index] = operand
            else:
                if operand != atom:
                    result.reason = (f"annotation[{k}] operand mismatch at "
                                     f"{offset:#x}")
                    return result
        result.interior_offsets.append(offset)
    result.matched = True
    result.end_index = index + len(pattern)
    result.target_reg = captured_reg
    result.anchor_mem = captured_mem
    return result
