"""Data-race co-location probes and their accuracy model.

The paper (§IV-C) evaluates the co-location test on four processors
(i7-6700, E3-1280 v5, i7-7700HQ, i5-6200U) with 25,600,000 unit tests
each, reporting false-positive rates "on the same order of magnitude".

A *unit test* is one contrived data race: co-located hyperthreads
communicate through the shared L1, so the race outcome is observed with
high probability; scheduled on different cores, the round trip goes
through the cache-coherence fabric and the observation probability
collapses.  A *check* aggregates ``n`` unit tests and declares
co-location when the observed race fraction reaches a threshold.

``analytic_alpha`` computes the exact binomial tail; the Monte-Carlo
path reproduces the measurement procedure (seeded, deterministic).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ProcessorModel:
    """Per-microarchitecture race-observation probabilities.

    Values are calibrated to the regimes HyperRace reports: same-core
    observation probability is high but microarchitecture-dependent
    (store-buffer and L1 timing differences); cross-core probability is
    low but nonzero.
    """

    name: str
    same_core_prob: float        # P(observe race | co-located)
    cross_core_prob: float       # P(observe race | separated)
    frequency_ghz: float


#: The paper's four test processors.
PROCESSORS: Dict[str, ProcessorModel] = {
    "i7-6700": ProcessorModel("i7-6700", 0.932, 0.08, 3.4),
    "E3-1280 v5": ProcessorModel("E3-1280 v5", 0.938, 0.07, 3.7),
    "i7-7700HQ": ProcessorModel("i7-7700HQ", 0.928, 0.09, 2.8),
    "i5-6200U": ProcessorModel("i5-6200U", 0.925, 0.10, 2.3),
}


def _binom_cdf(k: int, n: int, p: float) -> float:
    """P(X <= k) for X ~ Binomial(n, p), exact."""
    total = 0.0
    for i in range(k + 1):
        total += math.comb(n, i) * (p ** i) * ((1 - p) ** (n - i))
    return min(1.0, total)


def analytic_alpha(cpu: ProcessorModel, n: int = 64,
                   threshold: float = 0.78) -> float:
    """Exact false-positive rate: P(check fails | co-located).

    The check declares co-location when at least ``ceil(threshold*n)``
    of ``n`` unit tests observe the race.
    """
    need = math.ceil(threshold * n)
    return _binom_cdf(need - 1, n, cpu.same_core_prob)


def analytic_beta(cpu: ProcessorModel, n: int = 64,
                  threshold: float = 0.78) -> float:
    """False-negative rate: P(check passes | threads separated)."""
    need = math.ceil(threshold * n)
    return 1.0 - _binom_cdf(need - 1, n, cpu.cross_core_prob)


class CoLocationTester:
    """Seeded Monte-Carlo reproduction of the accuracy experiment."""

    def __init__(self, cpu: ProcessorModel, n: int = 64,
                 threshold: float = 0.78, seed: int = 2021):
        self.cpu = cpu
        self.n = n
        self.threshold = threshold
        # stable per-CPU stream (str hash randomization would break
        # reproducibility across interpreter runs)
        self._rng = random.Random(seed ^ (sum(cpu.name.encode()) & 0xFFFF))

    def unit_test(self, co_located: bool) -> bool:
        """One contrived data race; True when the race is observed."""
        p = self.cpu.same_core_prob if co_located \
            else self.cpu.cross_core_prob
        return self._rng.random() < p

    def check(self, co_located: bool = True) -> bool:
        """One co-location check (n unit tests vs the threshold)."""
        hits = sum(self.unit_test(co_located) for _ in range(self.n))
        return hits >= math.ceil(self.threshold * self.n)

    def estimate_alpha(self, unit_tests: int = 256_000) -> float:
        """Empirical false-positive rate over ``unit_tests`` unit tests
        (grouped into checks), mirroring the paper's 25.6M-test runs at
        simulation scale."""
        checks = max(1, unit_tests // self.n)
        failures = sum(not self.check(co_located=True)
                       for _ in range(checks))
        return failures / checks

    def estimate_beta(self, unit_tests: int = 256_000) -> float:
        checks = max(1, unit_tests // self.n)
        passes = sum(self.check(co_located=False)
                     for _ in range(checks))
        return passes / checks
