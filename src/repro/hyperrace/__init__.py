"""HyperRace-style co-location testing (policy P6's companion check).

When the P6 annotation detects an AEX, HyperRace [40] runs a data-race
probe between the protected thread and its shadow hyperthread: if the
two still share a physical core, contrived data races land with high
probability; if the OS separated them (to mount an L1/L2 cache attack),
the race probability collapses.  This package models the probe and
reproduces the paper's false-positive (α) accuracy experiment on four
processor models.
"""

from .colocation import (
    PROCESSORS, ProcessorModel, CoLocationTester, analytic_alpha,
)

__all__ = ["PROCESSORS", "ProcessorModel", "CoLocationTester",
           "analytic_alpha"]
