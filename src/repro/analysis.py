"""Static analysis reports over relocatable objects.

Complements the verifier with *descriptive* output: instruction mix,
annotation inventory and overhead, control-flow summary, per-function
sizes.  Used by ``python -m repro objdump --stats`` and by tests that
pin structural properties of producer output.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .bench.tables import format_table
from .compiler.objfile import ObjectFile, SEC_TEXT
from .core.proofcheck import PROOF_KIND_NAMES
from .core.rdd import recursive_descent
from .core.verifier import PolicyVerifier
from .isa.instructions import (
    COND_JUMPS, NO_FALLTHROUGH_OPS, Op, SPECS,
    is_indirect_branch, is_store,
)
from .policy.policies import PolicySet
from .staticproof import synthetic_image


@dataclass
class BinaryReport:
    """Everything the analyzer derives from one object."""

    text_bytes: int = 0
    reachable_instructions: int = 0
    reachable_bytes: int = 0
    dead_bytes: int = 0
    opcode_histogram: Dict[str, int] = field(default_factory=dict)
    stores: int = 0
    calls: int = 0
    indirect_branches: int = 0
    basic_blocks: int = 0
    functions: Dict[str, int] = field(default_factory=dict)  # name->size
    annotation_counts: Dict[str, int] = field(default_factory=dict)
    annotation_bytes: int = 0
    #: Annotation-light objects only: proof-kind name -> elided sites,
    #: and the annotation bytes those elisions saved.
    elided_counts: Dict[str, int] = field(default_factory=dict)
    annotation_bytes_saved: int = 0

    @property
    def annotation_fraction(self) -> float:
        """Share of reachable bytes spent on security annotations."""
        if not self.reachable_bytes:
            return 0.0
        return self.annotation_bytes / self.reachable_bytes

    def render(self) -> str:
        rows = [
            ["text bytes", self.text_bytes],
            ["reachable instructions", self.reachable_instructions],
            ["reachable bytes", self.reachable_bytes],
            ["dead (unreachable) bytes", self.dead_bytes],
            ["basic blocks", self.basic_blocks],
            ["stores", self.stores],
            ["calls", self.calls],
            ["indirect branches", self.indirect_branches],
            ["annotations", sum(self.annotation_counts.values())],
            ["annotation bytes",
             f"{self.annotation_bytes} "
             f"({100 * self.annotation_fraction:.1f}%)"],
        ]
        if self.elided_counts:
            rows.append(["elided guard sites (proven)",
                         sum(self.elided_counts.values())])
            rows.append(["annotation bytes saved",
                         self.annotation_bytes_saved])
        out = [format_table("binary statistics", ["metric", "value"],
                            rows)]
        top = Counter(self.opcode_histogram).most_common(10)
        out.append(format_table("top opcodes (reachable)",
                                ["mnemonic", "count"], top))
        funcs = sorted(self.functions.items(), key=lambda kv: -kv[1])
        out.append(format_table("functions by size",
                                ["symbol", "bytes"], funcs[:15]))
        if self.annotation_counts:
            out.append(format_table(
                "annotations", ["kind", "count"],
                sorted(self.annotation_counts.items())))
        if self.elided_counts:
            from .policy.templates import AnnotationKind as K
            counts = self.elided_counts
            pairs = [
                ("store (P1/P3/P4)", K.STORE_GUARD,
                 counts.get("stack", 0) + counts.get("const_addr", 0)),
                ("rsp (P2)", K.RSP_GUARD, counts.get("rsp_step", 0)),
                ("indirect branch (P5)", K.INDIRECT,
                 counts.get("cfi", 0)),
            ]
            out.append(format_table(
                "guard elision (annotation-light)",
                ["policy", "guarded", "elided"],
                [[name, self.annotation_counts.get(kind, 0), elided]
                 for name, kind, elided in pairs]))
        return "\n\n".join(out)


def analyze_object(obj: ObjectFile,
                   policies: Optional[PolicySet] = None,
                   custom=()) -> BinaryReport:
    """Analyze ``obj``; with ``policies`` the annotation inventory is
    produced by actually running the verifier."""
    report = BinaryReport(text_bytes=len(obj.text))
    entry = obj.symbols[obj.entry].offset
    targets = [obj.symbols[name].offset for name in obj.branch_targets]
    code = recursive_descent(obj.text, entry, targets)

    histogram: Counter = Counter()
    reachable_bytes = 0
    leaders = {entry} | set(targets)
    for offset, ins in code.stream:
        histogram[SPECS[ins.op].name] += 1
        reachable_bytes += ins.length
        if is_store(ins):
            report.stores += 1
        if ins.op == Op.CALL:
            report.calls += 1
            leaders.add(offset + ins.length + ins.operands[0])
        if is_indirect_branch(ins):
            report.indirect_branches += 1
        if ins.op == Op.JMP or ins.op in COND_JUMPS:
            leaders.add(offset + ins.length + ins.operands[0])
            if ins.op in COND_JUMPS:
                leaders.add(offset + ins.length)
    report.opcode_histogram = dict(histogram)
    report.reachable_instructions = len(code.stream)
    report.reachable_bytes = reachable_bytes
    report.dead_bytes = len(obj.text) - reachable_bytes
    report.basic_blocks = sum(1 for leader in leaders
                              if leader in code.index_of)

    # per-function sizes: distance to the next text symbol
    text_symbols = sorted(
        (sym.offset, name) for name, sym in obj.symbols.items()
        if sym.section == SEC_TEXT)
    for (off, name), (nxt, _) in zip(
            text_symbols, text_symbols[1:] + [(len(obj.text), "")]):
        report.functions[name] = nxt - off

    if policies is not None:
        verifier = PolicyVerifier(policies, custom=custom)
        if obj.proofs:
            # Light objects only verify with their proof log, which in
            # turn needs resolved constants and enclave bounds — run the
            # real verifier over the synthetic relocation.
            stext, bases, sentry, stargets = synthetic_image(obj)
            scode = recursive_descent(stext, sentry, stargets)
            verified = verifier.verify_code(scode, sentry, stargets,
                                            proofs=obj.proofs,
                                            values=bases)
            report.elided_counts = dict(Counter(
                PROOF_KIND_NAMES[kind] for _, kind, _ in obj.proofs))
            report.annotation_bytes_saved = _elided_bytes(
                report.elided_counts, policies)
        else:
            verified = verifier.verify(obj.text, entry, targets)
        report.annotation_counts = dict(verified.annotation_counts)
        report.annotation_bytes = _annotation_bytes(
            verified, policies, custom)
    return report


def _annotation_bytes(verified, policies: PolicySet, custom) -> int:
    from .policy.emit import pattern_length
    from .policy.templates import (
        indirect_branch_pattern, p6_guard_pattern,
        rsp_guard_pattern, shadow_epilogue_pattern,
        shadow_prologue_pattern, store_guard_pattern,
    )
    from .policy.templates import AnnotationKind as K
    sizes = {
        K.STORE_GUARD: pattern_length(store_guard_pattern(policies)),
        K.RSP_GUARD: pattern_length(rsp_guard_pattern()),
        K.INDIRECT: pattern_length(indirect_branch_pattern()),
        K.PROLOGUE: pattern_length(
            shadow_prologue_pattern(policies.mt_safe)),
        K.EPILOGUE: pattern_length(
            shadow_epilogue_pattern(policies.mt_safe)),
        K.P6_GUARD: pattern_length(p6_guard_pattern()),
    }
    for policy in custom:
        sizes[f"custom:{policy.name}"] = pattern_length(
            policy.guard_pattern())
    return sum(sizes.get(kind, 0) * count
               for kind, count in verified.annotation_counts.items())


def _elided_bytes(elided_counts: Dict[str, int],
                  policies: PolicySet) -> int:
    """Annotation bytes the static proofs saved: each elided site would
    otherwise have carried its policy's full guard pattern."""
    from .policy.emit import pattern_length
    from .policy.templates import (
        indirect_branch_pattern, rsp_guard_pattern, store_guard_pattern,
    )
    store = pattern_length(store_guard_pattern(policies))
    sizes = {"stack": store, "const_addr": store,
             "rsp_step": pattern_length(rsp_guard_pattern()),
             "cfi": pattern_length(indirect_branch_pattern())}
    return sum(sizes.get(kind, 0) * count
               for kind, count in elided_counts.items())
