"""Exception hierarchy for the DEFLECTION reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the CCaaS boundary.  Verification and
runtime-policy failures are kept distinct because the paper treats them
differently: a verification failure rejects the binary before it runs, a
policy violation aborts the computation at runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class EncodingError(ReproError):
    """Malformed instruction operands or undecodable bytes."""


class AssemblerError(ReproError):
    """Unresolved label, duplicate label, or out-of-range fixup."""


class ObjectFormatError(ReproError):
    """Corrupt or ill-formed relocatable object file."""


class CompileError(ReproError):
    """MiniC front-end or code-generation failure."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class MemoryFault(ReproError):
    """Hardware-level memory fault (page permissions, unmapped page)."""

    def __init__(self, message: str, address: int = 0):
        self.address = address
        super().__init__(message)


class CpuFault(ReproError):
    """Fetch/decode/execute fault inside the VM."""


class PolicyViolation(ReproError):
    """A security annotation trapped at runtime (TRAP instruction)."""

    def __init__(self, code: int, rip: int = 0, message: str = ""):
        self.code = code
        self.rip = rip
        super().__init__(message or f"policy violation code={code} rip={rip:#x}")


class VerificationError(ReproError):
    """The in-enclave verifier rejected the target binary."""

    def __init__(self, message: str, offset: int = -1):
        self.offset = offset
        if offset >= 0:
            message = f"text+{offset:#x}: {message}"
        super().__init__(message)


class LoaderError(ReproError):
    """Dynamic loader failure (layout overflow, bad relocation...)."""


class AttestationError(ReproError):
    """Quote or report failed verification."""


class AttestationOutage(AttestationError):
    """Attestation service temporarily unreachable.

    Kept distinct from :class:`AttestationError` because the two demand
    opposite reactions: an outage is *transient* (retry the handshake
    later), while a failed verification — bad signature, MRENCLAVE pin
    mismatch — is a trust failure that must never be retried.
    """


class ProtocolError(ReproError):
    """CCaaS protocol misuse (wrong message, bad MAC, replay...)."""


class EnclaveError(ReproError):
    """Enclave lifecycle misuse (ECall before EINIT etc.)."""


class EnclaveTeardown(EnclaveError):
    """The enclave instance was destroyed by the platform (EPC reclaim,
    power event, host restart).  Volatile state is gone; a fresh build +
    EINIT is required before any further ECall."""


class RetryBudgetExceeded(ReproError):
    """A resilient session exhausted its retry budget on transient
    failures without completing the operation."""


class AdmissionRejected(ReproError):
    """The fleet scheduler shed a job at the door instead of queueing it
    unboundedly.

    Carries a machine-readable :attr:`reason` (``"queue_full"`` or
    ``"tenant_quota"``) so callers — and the fleet report — can tell
    load-shedding apart from losing a session.  A rejected job never
    entered the queue; nothing about it is retried by the scheduler."""

    def __init__(self, message: str, reason: str = "queue_full",
                 tenant: str = ""):
        self.reason = reason
        self.tenant = tenant
        super().__init__(message)


class RollbackError(ReproError):
    """A sealed checkpoint failed authentication or freshness.

    Raised when a checkpoint's MAC does not verify (corruption, or a
    blob sealed by a different enclave/platform), when the chain is
    broken, or when the presented chain is *stale* — its head counter
    does not match the platform's monotonic counter, i.e. the host
    replayed checkpoint ``n-1`` after ``n`` was taken.  Always treated
    as a trust failure: resuming from unauthenticated state would hand
    the host a rollback channel, so this is never retried."""


class ProvenanceError(ReproError):
    """A cross-enclave provenance chain failed verification.

    Raised when a hop handoff presents a link stream whose MAC chain is
    broken (corruption, splice, reorder), whose hop indices are out of
    protocol order, whose epoch is stale (a rolled-back hop output
    re-presented after a discard-and-rerun), or whose digests do not
    bind the presented bytes.  Always a trust verdict — the consumer
    enclave refuses the input; it is never retried with the same
    evidence."""


class HopFailed(ReproError):
    """A pipeline stage reached a terminal non-transient failure.

    Carries the hop index, the stage name and a :attr:`triage` verdict
    mirroring the fleet scheduler's decisions: ``"blame"`` (the stage
    itself misbehaved — a policy violation or fault outcome; the
    pipeline fails closed at that hop) or ``"abort"`` (recovery options
    exhausted, e.g. a re-provisioned drone also failed)."""

    def __init__(self, message: str, hop: int = -1, stage: str = "",
                 triage: str = "abort"):
        self.hop = hop
        self.stage = stage
        self.triage = triage
        super().__init__(message)


class PipelineStalled(ReproError):
    """A pipeline stage blew its per-hop watchdog deadline repeatedly.

    Each individual :class:`DeadlineExceeded` is a *requeue* (the hop
    resumes from its sealed chain under a larger budget); this error is
    the triage escalation after ``max_stalls`` requeues.  Carries the
    sealed checkpoint chain harvested at the last safe point in
    :attr:`checkpoints` so a caller can still migrate or resume the
    work elsewhere."""

    def __init__(self, message: str, hop: int = -1, stage: str = "",
                 checkpoints=None):
        self.hop = hop
        self.stage = stage
        self.checkpoints = list(checkpoints) if checkpoints else []
        super().__init__(message)


class DeadlineExceeded(ReproError):
    """A watchdog budget (cycles or steps) ran out at a safe point.

    Carries the sealed checkpoint chain taken at the final safe point in
    :attr:`checkpoint`, so the caller can resume with a larger budget
    instead of losing the completed work."""

    def __init__(self, message: str, checkpoint=None):
        self.checkpoint = list(checkpoint) if checkpoint else []
        super().__init__(message)


class SessionPreempted(DeadlineExceeded):
    """The fleet scheduler interrupted a run at a safe point to yield
    the drone.

    A :class:`DeadlineExceeded` subclass because the mechanics are the
    same — the run stopped at a safe point and :attr:`checkpoint`
    carries the sealed chain taken there — but the *intent* differs: a
    deadline is a budget verdict, a preemption is a scheduling decision
    and the job is expected to resume (possibly on another EINIT of the
    same MRENCLAVE)."""
