"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from ..errors import CompileError
from . import astnodes as ast
from .ctypes import CHAR, INT, VOID, Array, CType, FuncType, Pointer
from .lexer import Token, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def _error(self, message: str) -> CompileError:
        tok = self.tok
        return CompileError(message, tok.line, tok.col)

    def advance(self) -> Token:
        tok = self.tok
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, value=None) -> bool:
        tok = self.tok
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind: str, value=None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value=None) -> Token:
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise self._error(f"expected {want!r}, got {self.tok.value!r}")
        return self.advance()

    # -- types --------------------------------------------------------------

    def at_type(self) -> bool:
        return self.tok.kind == "kw" and self.tok.value in ("int", "char",
                                                            "void")

    def parse_base_type(self) -> CType:
        tok = self.expect("kw")
        base = {"int": INT, "char": CHAR, "void": VOID}.get(tok.value)
        if base is None:
            raise self._error(f"expected a type, got {tok.value!r}")
        while self.accept("op", "*"):
            base = Pointer(base)
        return base

    def _parse_param_types(self) -> List["ast.Param"]:
        params: List[ast.Param] = []
        self.expect("op", "(")
        if self.accept("op", ")"):
            return params
        if self.check("kw", "void") and \
                self.tokens[self.pos + 1].value == ")":
            self.advance()
            self.expect("op", ")")
            return params
        while True:
            ptype, name = self.parse_declarator(allow_unnamed=True)
            if isinstance(ptype, Array):
                ptype = Pointer(ptype.elem)
            params.append(ast.Param(line=self.tok.line, name=name,
                                    ctype=ptype))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return params

    def parse_declarator(self, allow_unnamed: bool = False):
        """Parse ``type declarator``: plain names, arrays, and the
        function-pointer form ``ret (*name)(params)``."""
        base = self.parse_base_type()
        if self.check("op", "(") and \
                self.tokens[self.pos + 1].value == "*":
            self.advance()              # '('
            self.expect("op", "*")
            name = self.expect("ident").value
            self.expect("op", ")")
            params = self._parse_param_types()
            ftype = FuncType(base, tuple(p.ctype for p in params))
            return Pointer(ftype), name
        if allow_unnamed and not self.check("ident"):
            dims: List[int] = []
            while self.accept("op", "["):
                dims.append(self._const_int())
                self.expect("op", "]")
            ctype = base
            for dim in reversed(dims):
                ctype = Array(ctype, dim)
            return ctype, ""
        name = self.expect("ident").value
        dims: List[int] = []
        while self.accept("op", "["):
            if self.check("op", "]"):
                dims.append(-1)         # unsized: parameter-style
            else:
                dims.append(self._const_int())
            self.expect("op", "]")
        ctype = base
        for dim in reversed(dims):
            if dim < 0:
                ctype = Pointer(ctype)
            else:
                ctype = Array(ctype, dim)
        return ctype, name

    def _const_int(self) -> int:
        """Constant expression: literals with + - * / %, (), unary -."""
        return self._const_addsub()

    def _const_addsub(self) -> int:
        value = self._const_muldiv()
        while self.tok.kind == "op" and self.tok.value in ("+", "-"):
            op = self.advance().value
            rhs = self._const_muldiv()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _const_muldiv(self) -> int:
        value = self._const_atom()
        while self.tok.kind == "op" and self.tok.value in ("*", "/", "%"):
            op = self.advance().value
            rhs = self._const_atom()
            if op == "*":
                value *= rhs
            elif op == "/":
                value = int(value / rhs)
            else:
                value -= rhs * int(value / rhs)
        return value

    def _const_atom(self) -> int:
        if self.accept("op", "-"):
            return -self._const_atom()
        if self.accept("op", "("):
            value = self._const_addsub()
            self.expect("op", ")")
            return value
        return self.expect("int").value

    # -- top level --------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: List[ast.Node] = []
        while not self.check("eof"):
            decls.append(self.parse_decl())
        return ast.Program(line=1, decls=decls)

    def parse_decl(self) -> ast.Node:
        line = self.tok.line
        ctype, name = self.parse_declarator()
        if self.check("op", "("):
            params = self._parse_param_types()
            if self.accept("op", ";"):      # prototype
                return ast.FuncDef(line=line, name=name, ret=ctype,
                                   params=params, body=None)
            body = self.parse_block()
            return ast.FuncDef(line=line, name=name, ret=ctype,
                               params=params, body=body)
        init_values = None
        init_string = None
        if self.accept("op", "="):
            if self.check("string"):
                init_string = self.advance().value + b"\x00"
                # `char s[] = "…"` and `char *s = "…"` both become
                # array storage (no data relocations in the object format)
                if isinstance(ctype, Pointer):
                    ctype = Array(ctype.elem, len(init_string))
                elif isinstance(ctype, Array) and \
                        ctype.count < len(init_string):
                    ctype = Array(ctype.elem, len(init_string))
            elif self.accept("op", "{"):
                init_values = []
                while not self.check("op", "}"):
                    init_values.append(self._const_int())
                    if not self.accept("op", ","):
                        break
                self.expect("op", "}")
            else:
                init_values = [self._const_int()]
        self.expect("op", ";")
        return ast.GlobalDecl(line=line, name=name, ctype=ctype,
                              init_values=init_values,
                              init_string=init_string)

    # -- statements ---------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.tok.line
        self.expect("op", "{")
        statements: List[ast.Node] = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return ast.Block(line=line, statements=statements)

    def parse_statement(self) -> ast.Node:
        tok = self.tok
        if self.check("op", "{"):
            return self.parse_block()
        if self.check("kw", "if"):
            self.advance()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            then = self.parse_statement()
            other = None
            if self.accept("kw", "else"):
                other = self.parse_statement()
            return ast.If(line=tok.line, cond=cond, then=then, other=other)
        if self.check("kw", "while"):
            self.advance()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return ast.While(line=tok.line, cond=cond,
                             body=self.parse_statement())
        if self.check("kw", "for"):
            self.advance()
            self.expect("op", "(")
            init = None
            if not self.check("op", ";"):
                init = (self._parse_vardecl_stmt() if self.at_type()
                        else ast.ExprStmt(line=tok.line,
                                          expr=self.parse_expr()))
                self.expect("op", ";")
            else:
                self.advance()
            cond = None
            if not self.check("op", ";"):
                cond = self.parse_expr()
            self.expect("op", ";")
            step = None
            if not self.check("op", ")"):
                step = ast.ExprStmt(line=tok.line, expr=self.parse_expr())
            self.expect("op", ")")
            return ast.For(line=tok.line, init=init, cond=cond, step=step,
                           body=self.parse_statement())
        if self.check("kw", "return"):
            self.advance()
            value = None
            if not self.check("op", ";"):
                value = self.parse_expr()
            self.expect("op", ";")
            return ast.Return(line=tok.line, value=value)
        if self.check("kw", "break"):
            self.advance()
            self.expect("op", ";")
            return ast.Break(line=tok.line)
        if self.check("kw", "continue"):
            self.advance()
            self.expect("op", ";")
            return ast.Continue(line=tok.line)
        if self.at_type():
            decl = self._parse_vardecl_stmt()
            self.expect("op", ";")
            return decl
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.ExprStmt(line=tok.line, expr=expr)

    def _parse_vardecl_stmt(self) -> ast.Node:
        """One or more comma-separated local declarations."""
        line = self.tok.line
        decls: List[ast.Node] = []
        ctype, name = self.parse_declarator()
        decls.append(self._finish_vardecl(line, ctype, name))
        base_line = line
        while self.accept("op", ","):
            # subsequent declarators share the base type token sequence;
            # re-parse pointer stars per declarator is not supported, so
            # plain names/arrays only
            name = self.expect("ident").value
            dims = []
            while self.accept("op", "["):
                dims.append(self._const_int())
                self.expect("op", "]")
            dtype = _strip_to_base(ctype)
            for dim in reversed(dims):
                dtype = Array(dtype, dim)
            decls.append(self._finish_vardecl(base_line, dtype, name))
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(line=line, decls=decls)

    def _finish_vardecl(self, line: int, ctype: CType,
                        name: str) -> ast.VarDecl:
        init = None
        if self.accept("op", "="):
            init = self.parse_assignment()
        return ast.VarDecl(line=line, name=name, ctype=ctype, init=init)

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> ast.Node:
        node = self.parse_assignment()
        return node

    def parse_assignment(self) -> ast.Node:
        node = self.parse_ternary()
        tok = self.tok
        if tok.kind == "op" and tok.value in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(line=tok.line, op=tok.value, target=node,
                              value=value)
        return node

    def parse_ternary(self) -> ast.Node:
        cond = self._parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_expr()
            self.expect("op", ":")
            other = self.parse_ternary()
            return ast.Ternary(line=cond.line, cond=cond, then=then,
                               other=other)
        return cond

    _LEVELS = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", ">", "<=", ">="],
        ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> ast.Node:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        node = self._parse_binary(level + 1)
        ops = self._LEVELS[level]
        while self.tok.kind == "op" and self.tok.value in ops:
            tok = self.advance()
            rhs = self._parse_binary(level + 1)
            node = ast.Binary(line=tok.line, op=tok.value, lhs=node,
                              rhs=rhs)
        return node

    def parse_unary(self) -> ast.Node:
        tok = self.tok
        if tok.kind == "op" and tok.value in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=tok.line, op=tok.value, operand=operand)
        if tok.kind == "op" and tok.value in ("++", "--"):
            self.advance()
            target = self.parse_unary()
            return ast.IncDec(line=tok.line, op=tok.value, prefix=True,
                              target=target)
        if self.check("kw", "sizeof"):
            self.advance()
            self.expect("op", "(")
            ctype, _ = self.parse_declarator(allow_unnamed=True)
            self.expect("op", ")")
            return ast.SizeofType(line=tok.line, size=max(1, ctype.size))
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Node:
        node = self.parse_primary()
        while True:
            tok = self.tok
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                node = ast.Index(line=tok.line, base=node, index=index)
            elif self.accept("op", "("):
                args: List[ast.Node] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                node = ast.Call(line=tok.line, callee=node, args=args)
            elif tok.kind == "op" and tok.value in ("++", "--"):
                self.advance()
                node = ast.IncDec(line=tok.line, op=tok.value, prefix=False,
                                  target=node)
            else:
                return node

    def parse_primary(self) -> ast.Node:
        tok = self.tok
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind == "string":
            self.advance()
            return ast.StrLit(line=tok.line, data=tok.value + b"\x00")
        if tok.kind == "ident":
            self.advance()
            return ast.Ident(line=tok.line, name=tok.value)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self._error(f"unexpected token {tok.value!r}")


def _strip_to_base(ctype: CType) -> CType:
    while isinstance(ctype, Array):
        ctype = ctype.elem
    return ctype


def parse(source: str) -> ast.Program:
    return Parser(tokenize(source)).parse_program()
