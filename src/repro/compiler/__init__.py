"""The untrusted code producer (the paper's LLVM-based code generator).

Compiles MiniC — a C subset rich enough for the paper's workloads
(nBench-style kernels, Needleman-Wunsch, a BP neural network, request
handlers) — down to DX86 machine code, runs the policy instrumentation
passes over the assembly, and links everything (program + shim-libc
prelude) into a single relocatable object carrying symbols, relocations
and the indirect-branch-target list, ready for in-enclave loading.

Pipeline: lexer -> parser -> sema -> codegen -> passes -> linker.
"""

from .frontend import CodeGenerator, compile_source
from .objfile import ObjectFile, Symbol, ObjRelocation

__all__ = ["CodeGenerator", "compile_source", "ObjectFile", "Symbol",
           "ObjRelocation"]
