"""Static linker: instrumented functions -> one relocatable object.

Mirrors §IV-C "Code loading support": all functions (program + shim-libc
prelude) are laid out into a single text image with an entry stub and the
trap pads; all symbols and relocation entries are kept in relocatable
form for the in-enclave loader; the indirect-branch-target list is the
set of *address-taken* functions (functions referenced through 64-bit
immediates rather than direct calls).
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import AssemblerError, CompileError
from ..isa.assembler import assemble
from ..isa.instructions import Instruction, Label, LabelDef, Op
from ..policy.magic import ALL_VIOLATION_CODES, trap_label
from ..policy.policies import PolicySet
from ..staticproof import frame_discipline_ok, prove_object
from .codegen import FuncCode
from .objfile import (
    KIND_FUNC, KIND_OBJECT, ObjectFile, ObjRelocation,
    SEC_BSS, SEC_DATA, SEC_TEXT,
)
from .passes import PassPipeline
from .sema import SemaResult

ENTRY_SYMBOL = "__start"


def _entry_stub(entry_fn: str) -> FuncCode:
    items = [
        LabelDef(ENTRY_SYMBOL),
        Instruction(Op.CALL, Label(entry_fn)),
        Instruction(Op.HLT),
    ]
    return FuncCode(ENTRY_SYMBOL, items, no_shadow=True)


def _trap_pads(extra_codes=()) -> FuncCode:
    items: List[object] = []
    for code in tuple(ALL_VIOLATION_CODES) + tuple(extra_codes):
        items.append(LabelDef(trap_label(code)))
        items.append(Instruction(Op.TRAP, code))
    return FuncCode("__deflection_traps", items, no_instrument=True)


def _align8(value: int) -> int:
    return (value + 7) & ~7


def link(units: Dict[str, FuncCode], sema: SemaResult,
         policies: PolicySet, entry_fn: str = "main",
         custom=(), light: bool = False) -> ObjectFile:
    if entry_fn not in units:
        raise AssemblerError(f"entry function {entry_fn!r} not defined")
    if light and custom:
        # A custom guard anchored on an elided store would consume the
        # site, orphaning its proof entry at verification time.
        raise CompileError(
            "annotation-light mode does not support custom policies")
    obj = ObjectFile(policies_label=policies.describe())
    obj.entry = ENTRY_SYMBOL

    # -- data/bss layout ----------------------------------------------------
    data = bytearray()
    bss_cursor = 0
    for info in sema.globals:
        if info.is_bss:
            bss_cursor = _align8(bss_cursor)
            obj.add_symbol(info.name, SEC_BSS, bss_cursor, KIND_OBJECT)
            bss_cursor += info.size
        else:
            offset = _align8(len(data))
            data += b"\x00" * (offset - len(data))
            obj.add_symbol(info.name, SEC_DATA, offset, KIND_OBJECT)
            payload = info.init[:info.size]
            data += payload + b"\x00" * (info.size - len(payload))
    obj.data = bytes(data)
    obj.bss_size = _align8(bss_cursor)

    # -- instrumentation ------------------------------------------------------
    custom_codes = [policy.violation_code for policy in custom]
    ordered = [_entry_stub(entry_fn), _trap_pads(custom_codes)] + \
        [units[name] for name in sorted(units)]
    frame_ok = frame_discipline_ok(
        [item for unit in ordered for item in unit.items]) if light \
        else True
    pipeline = PassPipeline(
        policies, custom=custom, light=light, frame_ok=frame_ok,
        data_symbols=frozenset(info.name for info in sema.globals),
        func_symbols=frozenset(units))
    items: List[object] = []
    for unit in ordered:
        items.extend(pipeline.run(unit).items)

    # -- assembly ---------------------------------------------------------------
    assembled = assemble(items)
    obj.text = assembled.code
    function_names = {ENTRY_SYMBOL} | set(units)
    for name in function_names:
        obj.add_symbol(name, SEC_TEXT, assembled.labels[name], KIND_FUNC)
    for code in tuple(ALL_VIOLATION_CODES) + tuple(custom_codes):
        obj.add_symbol(trap_label(code), SEC_TEXT,
                       assembled.labels[trap_label(code)], KIND_FUNC)

    # -- relocations + indirect-branch list ------------------------------------
    address_taken = set()
    for reloc in assembled.relocations:
        if reloc.symbol not in obj.symbols:
            raise AssemblerError(f"undefined symbol {reloc.symbol!r}")
        obj.relocations.append(
            ObjRelocation(reloc.offset, reloc.symbol, reloc.addend))
        if obj.symbols[reloc.symbol].kind == KIND_FUNC:
            address_taken.add(reloc.symbol)
    obj.branch_targets = sorted(address_taken)

    # -- static proof log -------------------------------------------------------
    if pipeline.context.elisions:
        instrs = [item for item in items if isinstance(item, Instruction)]
        offsets = {id(item): off
                   for item, off in zip(instrs, assembled.instr_offsets)}
        obj.proofs = sorted(
            (offsets[id(site)], kind,
             offsets[id(def_item)] if def_item is not None else 0)
            for site, kind, def_item in pipeline.context.elisions)
        # Fail closed at build time: re-derive every proof exactly the
        # way the enclave will, over a synthetic relocation.
        prove_object(obj)
    return obj
