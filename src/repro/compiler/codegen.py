"""MiniC code generation: typed AST -> DX86 assembly items.

Conventions (documented in DESIGN.md):

* all arguments on the stack, pushed right to left; caller pops
  (``ADD RSP, 8n`` — an explicit RSP write that P2 later annotates);
* return value in RAX;
* frame: ``PUSH RBP; MOV RBP, RSP; SUB RSP, frame`` — locals below RBP;
* expression temporaries from a register pool (RAX..R12 except RSP/RBP);
  R13-R15 are never allocated — they belong to the security annotations;
* ``char`` is unsigned; local scalar ``char`` variables live in 8-byte
  slots and are truncated on store;
* builtins ``__send``/``__recv``/``__report`` lower to SVC instructions
  with arguments in RDI/RSI (the bootstrap's OCall stubs implement them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CompileError
from ..isa.instructions import Instruction, Label, LabelDef, Mem, Op, SymbolRef
from ..isa.registers import (
    ALLOCATABLE_REGS, RAX, RBP, RDI, RSI, RSP,
)
from . import astnodes as ast
from .ctypes import CHAR, INT, VOID, Array, CType, FuncType, Pointer
from .sema import BUILTINS, SemaResult

#: SVC numbers for the builtins (must match the bootstrap's stub table).
SVC_SEND = 1
SVC_RECV = 2
SVC_REPORT = 3

_BUILTIN_SVC = {"__send": SVC_SEND, "__recv": SVC_RECV,
                "__report": SVC_REPORT}

_BINOPS = {
    "+": (Op.ADD_RR, Op.ADD_RI), "-": (Op.SUB_RR, Op.SUB_RI),
    "*": (Op.IMUL_RR, Op.IMUL_RI), "/": (Op.DIV_RR, Op.DIV_RI),
    "%": (Op.MOD_RR, Op.MOD_RI), "&": (Op.AND_RR, Op.AND_RI),
    "|": (Op.OR_RR, Op.OR_RI), "^": (Op.XOR_RR, Op.XOR_RI),
    "<<": (Op.SHL_RR, Op.SHL_RI), ">>": (Op.SAR_RR, Op.SAR_RI),
}

_CMP_JCC = {"==": Op.JE, "!=": Op.JNE, "<": Op.JL, "<=": Op.JLE,
            ">": Op.JG, ">=": Op.JGE}
_CMP_NEG = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=",
            ">=": "<"}

_I32_MIN, _I32_MAX = -(1 << 31), (1 << 31) - 1


def _fits_i32(value: int) -> bool:
    return _I32_MIN <= value <= _I32_MAX


@dataclass
class FuncCode:
    """One compiled unit of assembly items."""

    name: str
    items: List[object]
    no_shadow: bool = False      # entry stub: no shadow prologue/epilogue
    no_instrument: bool = False  # trap pads: never instrumented


@dataclass
class _Address:
    """A resolved lvalue: memory operand + temps to release afterwards."""

    mem: Mem
    temps: List[int] = field(default_factory=list)
    ctype: CType = INT


class FunctionCodegen:
    def __init__(self, func: ast.FuncDef, sema: SemaResult):
        self.func = func
        self.sema = sema
        self.items: List[object] = []
        self._free = list(reversed(ALLOCATABLE_REGS))
        self._live: List[int] = []
        self._labels = 0
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)
        self.epilogue_label = f".{func.name}.epilogue"

    # -- infrastructure ------------------------------------------------------

    def emit(self, op: int, *operands) -> None:
        self.items.append(Instruction(op, *operands))

    def label(self, name: str) -> None:
        self.items.append(LabelDef(name))

    def new_label(self, tag: str) -> str:
        self._labels += 1
        return f".{self.func.name}.{tag}{self._labels}"

    def acquire(self, exclude: Tuple[int, ...] = ()) -> int:
        for idx in range(len(self._free) - 1, -1, -1):
            reg = self._free[idx]
            if reg not in exclude:
                self._free.pop(idx)
                self._live.append(reg)
                return reg
        raise CompileError(
            f"expression too complex in {self.func.name!r}",
            self.func.line)

    def take(self, reg: int) -> None:
        """Acquire a specific register (must be free)."""
        self._free.remove(reg)
        self._live.append(reg)

    def release(self, reg: int) -> None:
        self._live.remove(reg)
        self._free.append(reg)

    def release_addr(self, addr: _Address) -> None:
        for reg in addr.temps:
            self.release(reg)

    # -- function shell --------------------------------------------------------

    def generate(self) -> FuncCode:
        func = self.func
        self.label(func.name)
        self.emit(Op.PUSH_R, RBP)
        self.emit(Op.MOV_RR, RBP, RSP)
        frame = 8 * func.frame_slots
        if frame:
            self.emit(Op.SUB_RI, RSP, frame)
        self.gen_block(func.body)
        self.emit(Op.MOV_RI, RAX, 0)   # implicit `return 0`
        self.label(self.epilogue_label)
        self.emit(Op.MOV_RR, RSP, RBP)
        self.emit(Op.POP_R, RBP)
        self.emit(Op.RET)
        if self._live:  # pragma: no cover - internal invariant
            raise CompileError(
                f"temp leak in {func.name!r}: {self._live}", func.line)
        return FuncCode(func.name, self.items)

    # -- addresses ----------------------------------------------------------------

    def local_mem(self, node) -> Mem:
        if isinstance(node, ast.Ident):
            binding, slot = node.binding, node.slot
        else:
            binding, slot = "local", node.slot
        if binding == "param":
            return Mem(RBP, disp=16 + 8 * slot)
        return Mem(RBP, disp=-slot)

    def gen_addr(self, node) -> _Address:
        """Compute the address of an lvalue (or array designator)."""
        if isinstance(node, ast.Ident):
            if node.binding in ("local", "param"):
                return _Address(self.local_mem(node), [],
                                node.decl_type)
            if node.binding == "global":
                reg = self.acquire()
                self.emit(Op.MOV_RI, reg, SymbolRef(node.symbol))
                return _Address(Mem(reg), [reg], node.decl_type)
            raise CompileError(
                f"cannot address {node.name!r}", node.line)
        if isinstance(node, ast.Unary) and node.op == "*":
            reg = self.gen_expr(node.operand)
            elem = node.operand.ctype.elem
            return _Address(Mem(reg), [reg], elem)
        if isinstance(node, ast.Index):
            return self._index_addr(node)
        raise CompileError("expression is not addressable", node.line)

    def _index_addr(self, node: ast.Index) -> _Address:
        base = self.gen_expr(node.base)
        elem_size = node.elem_size
        elem = node.base.ctype.elem
        if isinstance(node.index, ast.IntLit):
            disp = node.index.value * elem_size
            if _fits_i32(disp):
                return _Address(Mem(base, disp=disp), [base], elem)
        index = self.gen_expr(node.index)
        if elem_size in (1, 2, 4, 8):
            return _Address(Mem(base, index, elem_size), [base, index],
                            elem)
        self.emit(Op.IMUL_RI, index, elem_size)
        return _Address(Mem(base, index, 1), [base, index], elem)

    # -- loads and stores -------------------------------------------------------

    def load_from(self, addr: _Address) -> int:
        """Load the value at ``addr`` into a fresh temp (or take the
        address itself for aggregates, which decay)."""
        if isinstance(addr.ctype, (Array, FuncType)):
            reg = self.acquire()
            self.emit(Op.LEA, reg, addr.mem)
            self.release_addr(addr)
            return reg
        reg = self.acquire()
        if addr.ctype == CHAR:
            self.emit(Op.LDB, reg, addr.mem)
        else:
            self.emit(Op.MOV_RM, reg, addr.mem)
        self.release_addr(addr)
        return reg

    def store_to(self, addr: _Address, value_reg: int,
                 keep_addr: bool = False) -> None:
        if addr.ctype == CHAR and addr.mem.base == RBP and \
                addr.mem.index is None:
            # local char scalar in an 8-byte slot: truncate, wide store
            self.emit(Op.AND_RI, value_reg, 0xFF)
            self.emit(Op.MOV_MR, addr.mem, value_reg)
        elif addr.ctype == CHAR:
            self.emit(Op.STB, addr.mem, value_reg)
        else:
            self.emit(Op.MOV_MR, addr.mem, value_reg)
        if not keep_addr:
            self.release_addr(addr)

    # -- expressions ----------------------------------------------------------------

    def gen_expr(self, node) -> int:
        """Evaluate ``node`` into a freshly acquired register."""
        if isinstance(node, ast.IntLit):
            reg = self.acquire()
            self.emit(Op.MOV_RI, reg, node.value & ((1 << 64) - 1))
            return reg
        if isinstance(node, ast.SizeofType):
            reg = self.acquire()
            self.emit(Op.MOV_RI, reg, node.size)
            return reg
        if isinstance(node, ast.StrLit):
            reg = self.acquire()
            self.emit(Op.MOV_RI, reg, SymbolRef(node.symbol))
            return reg
        if isinstance(node, ast.Ident):
            return self._gen_ident(node)
        if isinstance(node, ast.Unary):
            return self._gen_unary(node)
        if isinstance(node, ast.Binary):
            return self._gen_binary(node)
        if isinstance(node, ast.Assign):
            return self._gen_assign(node, want_result=True)
        if isinstance(node, ast.IncDec):
            return self._gen_incdec(node, want_result=True)
        if isinstance(node, ast.Index):
            return self.load_from(self.gen_addr(node))
        if isinstance(node, ast.Call):
            return self.gen_call(node, want_result=True)
        if isinstance(node, ast.Ternary):
            return self._gen_ternary(node)
        raise CompileError(f"unhandled expression {type(node).__name__}",
                           node.line)

    def _gen_ident(self, node: ast.Ident) -> int:
        if node.binding in ("func", "builtin"):
            if node.binding == "builtin":
                raise CompileError(
                    f"cannot take the address of builtin {node.name!r}",
                    node.line)
            reg = self.acquire()
            self.emit(Op.MOV_RI, reg, SymbolRef(node.symbol))
            return reg
        return self.load_from(self.gen_addr(node))

    def _gen_unary(self, node: ast.Unary) -> int:
        if node.op == "&":
            inner = node.operand
            if isinstance(inner, ast.Ident) and inner.binding == "func":
                reg = self.acquire()
                self.emit(Op.MOV_RI, reg, SymbolRef(inner.symbol))
                return reg
            addr = self.gen_addr(inner)
            reg = self.acquire()
            self.emit(Op.LEA, reg, addr.mem)
            self.release_addr(addr)
            return reg
        if node.op == "*":
            return self.load_from(self.gen_addr(node))
        if node.op == "!":
            reg = self.gen_expr(node.operand)
            self.emit(Op.CMP_RI, reg, 0)
            self.emit(Op.MOV_RI, reg, 1)
            skip = self.new_label("not")
            self.emit(Op.JE, Label(skip))
            self.emit(Op.MOV_RI, reg, 0)
            self.label(skip)
            return reg
        reg = self.gen_expr(node.operand)
        if node.op == "-":
            self.emit(Op.NEG, reg)
        elif node.op == "~":
            self.emit(Op.NOT, reg)
        else:  # pragma: no cover - parser restricts unary ops
            raise CompileError(f"unhandled unary {node.op!r}", node.line)
        return reg

    def _gen_binary(self, node: ast.Binary) -> int:
        if node.op in _CMP_JCC:
            return self._materialize_bool(node)
        if node.op in ("&&", "||"):
            return self._materialize_bool(node)
        if node.op in ("+", "-") and getattr(node, "scale_side", "") \
                == "lhs":
            # int + pointer: normalize to pointer + int
            node.lhs, node.rhs = node.rhs, node.lhs
            node.scale_side = "rhs"
        op_rr, op_ri = _BINOPS[node.op]
        scale = getattr(node, "ptr_scale", 1)
        lhs = self.gen_expr(node.lhs)
        if isinstance(node.rhs, ast.IntLit):
            imm = node.rhs.value * scale
            if _fits_i32(imm):
                self.emit(op_ri, lhs, imm)
                return self._after_ptr_diff(node, lhs)
        rhs = self.gen_expr(node.rhs)
        if scale != 1 and getattr(node, "scale_side", "rhs") == "rhs":
            self.emit(Op.IMUL_RI, rhs, scale)
        self.emit(op_rr, lhs, rhs)
        self.release(rhs)
        return self._after_ptr_diff(node, lhs)

    def _after_ptr_diff(self, node: ast.Binary, reg: int) -> int:
        diff_size = getattr(node, "ptr_diff_size", 1)
        if diff_size > 1:
            if diff_size & (diff_size - 1) == 0:
                self.emit(Op.SAR_RI, reg, diff_size.bit_length() - 1)
            else:
                self.emit(Op.DIV_RI, reg, diff_size)
        return reg

    def _materialize_bool(self, node) -> int:
        true_label = self.new_label("btrue")
        end_label = self.new_label("bend")
        reg = self.acquire()
        self.gen_branch(node, true_label, jump_if_true=True,
                        scratch_exclude=(reg,))
        self.emit(Op.MOV_RI, reg, 0)
        self.emit(Op.JMP, Label(end_label))
        self.label(true_label)
        self.emit(Op.MOV_RI, reg, 1)
        self.label(end_label)
        return reg

    def _gen_ternary(self, node: ast.Ternary) -> int:
        else_label = self.new_label("telse")
        end_label = self.new_label("tend")
        self.gen_branch(node.cond, else_label, jump_if_true=False)
        reg = self.gen_expr(node.then)
        self.emit(Op.JMP, Label(end_label))
        self.label(else_label)
        # evaluate the other arm into the same register
        self.release(reg)
        other = self.gen_expr(node.other)
        if other != reg:
            self.emit(Op.MOV_RR, reg, other)
            self.release(other)
            self.take(reg)
        self.label(end_label)
        return reg

    def _gen_assign(self, node: ast.Assign, want_result: bool) -> int:
        addr = self.gen_addr(node.target)
        if node.op == "=":
            value = self.gen_expr(node.value)
        else:
            base_op = node.op[:-1]
            op_rr, op_ri = _BINOPS[base_op]
            value = self.load_from(
                _Address(addr.mem, [], addr.ctype))
            scale = getattr(node, "ptr_scale", 1)
            if isinstance(node.value, ast.IntLit) and \
                    _fits_i32(node.value.value * scale):
                self.emit(op_ri, value, node.value.value * scale)
            else:
                rhs = self.gen_expr(node.value)
                if scale != 1:
                    self.emit(Op.IMUL_RI, rhs, scale)
                self.emit(op_rr, value, rhs)
                self.release(rhs)
        self.store_to(addr, value)
        if want_result:
            return value
        self.release(value)
        return -1

    def _gen_incdec(self, node: ast.IncDec, want_result: bool) -> int:
        addr = self.gen_addr(node.target)
        scale = getattr(node, "ptr_scale", 1)
        delta = scale if node.op == "++" else -scale
        value = self.load_from(_Address(addr.mem, [], addr.ctype))
        old = -1
        if want_result and not node.prefix:
            old = self.acquire()
            self.emit(Op.MOV_RR, old, value)
        self.emit(Op.ADD_RI, value, delta)
        self.store_to(addr, value)
        if want_result:
            if node.prefix:
                return value
            self.release(value)
            return old
        self.release(value)
        return -1

    # -- calls --------------------------------------------------------------------

    def gen_call(self, node: ast.Call, want_result: bool) -> int:
        if getattr(node, "builtin", False):
            return self._gen_builtin_call(node, want_result)
        saved = list(self._live)
        for reg in saved:
            self.emit(Op.PUSH_R, reg)
            self.release(reg)

        callee_temp = -1
        if not node.direct_symbol:
            callee_temp = self.gen_expr(node.callee)
        for arg in reversed(node.args):
            reg = self.gen_expr(arg)
            self.emit(Op.PUSH_R, reg)
            self.release(reg)
        if node.direct_symbol:
            self.emit(Op.CALL, Label(node.direct_symbol))
        else:
            self.emit(Op.CALL_R, callee_temp)
            self.release(callee_temp)
        if node.args:
            self.emit(Op.ADD_RI, RSP, 8 * len(node.args))

        result = -1
        if want_result:
            result = self.acquire(exclude=tuple(saved))
            if result != RAX:
                self.emit(Op.MOV_RR, result, RAX)
        for reg in reversed(saved):
            self.emit(Op.POP_R, reg)
            self.take(reg)
        return result

    def _gen_builtin_call(self, node: ast.Call, want_result: bool) -> int:
        svc = _BUILTIN_SVC[node.direct_symbol]
        saved = list(self._live)
        for reg in saved:
            self.emit(Op.PUSH_R, reg)
            self.release(reg)
        for arg in node.args:
            reg = self.gen_expr(arg)
            self.emit(Op.PUSH_R, reg)
            self.release(reg)
        arg_regs = [RDI, RSI][:len(node.args)]
        for reg in reversed(arg_regs):
            self.take(reg)
            self.emit(Op.POP_R, reg)
        self.emit(Op.SVC, svc)
        for reg in arg_regs:
            self.release(reg)
        result = -1
        if want_result:
            result = self.acquire(exclude=tuple(saved))
            if result != RAX:
                self.emit(Op.MOV_RR, result, RAX)
        for reg in reversed(saved):
            self.emit(Op.POP_R, reg)
            self.take(reg)
        return result

    # -- conditionals ------------------------------------------------------------

    def gen_branch(self, node, target: str, jump_if_true: bool,
                   scratch_exclude: Tuple[int, ...] = ()) -> None:
        """Emit a branch to ``target`` taken iff ``node`` is
        truthy == ``jump_if_true``."""
        if isinstance(node, ast.IntLit):
            if bool(node.value) == jump_if_true:
                self.emit(Op.JMP, Label(target))
            return
        if isinstance(node, ast.Unary) and node.op == "!":
            self.gen_branch(node.operand, target, not jump_if_true,
                            scratch_exclude)
            return
        if isinstance(node, ast.Binary) and node.op in _CMP_JCC:
            cmp_op = node.op if jump_if_true else _CMP_NEG[node.op]
            lhs = self.gen_expr(node.lhs)
            if isinstance(node.rhs, ast.IntLit) and \
                    _fits_i32(node.rhs.value):
                self.emit(Op.CMP_RI, lhs, node.rhs.value)
            else:
                rhs = self.gen_expr(node.rhs)
                self.emit(Op.CMP_RR, lhs, rhs)
                self.release(rhs)
            self.release(lhs)
            self.emit(_CMP_JCC[cmp_op], Label(target))
            return
        if isinstance(node, ast.Binary) and node.op == "&&":
            if jump_if_true:
                skip = self.new_label("and")
                self.gen_branch(node.lhs, skip, False, scratch_exclude)
                self.gen_branch(node.rhs, target, True, scratch_exclude)
                self.label(skip)
            else:
                self.gen_branch(node.lhs, target, False, scratch_exclude)
                self.gen_branch(node.rhs, target, False, scratch_exclude)
            return
        if isinstance(node, ast.Binary) and node.op == "||":
            if jump_if_true:
                self.gen_branch(node.lhs, target, True, scratch_exclude)
                self.gen_branch(node.rhs, target, True, scratch_exclude)
            else:
                skip = self.new_label("or")
                self.gen_branch(node.lhs, skip, True, scratch_exclude)
                self.gen_branch(node.rhs, target, False, scratch_exclude)
                self.label(skip)
            return
        reg = self.gen_expr(node)
        self.emit(Op.CMP_RI, reg, 0)
        self.release(reg)
        self.emit(Op.JNE if jump_if_true else Op.JE, Label(target))

    # -- statements ----------------------------------------------------------------

    def gen_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self.gen_stmt(decl)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                value = self.gen_expr(stmt.init)
                addr = _Address(self.local_mem(stmt), [], stmt.ctype)
                self.store_to(addr, value)
                self.release(value)
        elif isinstance(stmt, ast.If):
            else_label = self.new_label("else")
            self.gen_branch(stmt.cond, else_label, jump_if_true=False)
            self.gen_stmt(stmt.then)
            if stmt.other is not None:
                end_label = self.new_label("endif")
                self.emit(Op.JMP, Label(end_label))
                self.label(else_label)
                self.gen_stmt(stmt.other)
                self.label(end_label)
            else:
                self.label(else_label)
        elif isinstance(stmt, ast.While):
            start = self.new_label("while")
            end = self.new_label("wend")
            self.label(start)
            self.gen_branch(stmt.cond, end, jump_if_true=False)
            self._loop_stack.append((start, end))
            self.gen_stmt(stmt.body)
            self._loop_stack.pop()
            self.emit(Op.JMP, Label(start))
            self.label(end)
        elif isinstance(stmt, ast.For):
            start = self.new_label("for")
            cont = self.new_label("fcont")
            end = self.new_label("fend")
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            self.label(start)
            if stmt.cond is not None:
                self.gen_branch(stmt.cond, end, jump_if_true=False)
            self._loop_stack.append((cont, end))
            self.gen_stmt(stmt.body)
            self._loop_stack.pop()
            self.label(cont)
            if stmt.step is not None:
                self.gen_stmt(stmt.step)
            self.emit(Op.JMP, Label(start))
            self.label(end)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self.gen_expr(stmt.value)
                if reg != RAX:
                    self.emit(Op.MOV_RR, RAX, reg)
                self.release(reg)
            self.emit(Op.JMP, Label(self.epilogue_label))
        elif isinstance(stmt, ast.Break):
            self.emit(Op.JMP, Label(self._loop_stack[-1][1]))
        elif isinstance(stmt, ast.Continue):
            self.emit(Op.JMP, Label(self._loop_stack[-1][0]))
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr_stmt(stmt.expr)
        else:
            raise CompileError(
                f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _gen_expr_stmt(self, expr) -> None:
        if isinstance(expr, ast.Assign):
            self._gen_assign(expr, want_result=False)
        elif isinstance(expr, ast.IncDec):
            self._gen_incdec(expr, want_result=False)
        elif isinstance(expr, ast.Call):
            want = expr.ctype != VOID
            reg = self.gen_call(expr, want_result=False)
            if want and reg >= 0:  # pragma: no cover
                self.release(reg)
        else:
            self.release(self.gen_expr(expr))


def generate_functions(sema: SemaResult) -> Dict[str, FuncCode]:
    """Compile every defined function to assembly items."""
    out: Dict[str, FuncCode] = {}
    for func in sema.functions:
        out[func.name] = FunctionCodegen(func, sema).generate()
    return out
