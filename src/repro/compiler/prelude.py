"""Shim libc: the MiniC runtime routines linked into every target binary.

The paper statically links a shim libc into the relocatable target (the
2.6 MB "self-contained enclave binary with a shim libc" of §VI-A); this
is our equivalent, compiled and instrumented exactly like user code.
"""

PRELUDE_SOURCE = r"""
// ---- deflection shim libc (MiniC) ----

int memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = src[i];
    return n;
}

int memset(char *dst, int value, int n) {
    int i;
    for (i = 0; i < n; i++) dst[i] = value;
    return n;
}

int strlen(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

int strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
    return i;
}

int abs(int x) {
    if (x < 0) return -x;
    return x;
}

int min(int a, int b) { if (a < b) return a; return b; }
int max(int a, int b) { if (a > b) return a; return b; }

// Deterministic PRNG (same constants as glibc rand_r).
int __rand_state = 12345;

int srand(int seed) { __rand_state = seed; return 0; }

int rand() {
    __rand_state = (__rand_state * 1103515245 + 12345) & 2147483647;
    return __rand_state;
}
"""
