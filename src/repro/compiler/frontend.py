"""The untrusted code producer's public entry point.

``CodeGenerator`` is the paper's out-of-enclave generator: it compiles
MiniC source (plus the shim-libc prelude), runs the instrumentation
passes selected by a :class:`~repro.policy.policies.PolicySet`, and
links a relocatable object ready for delivery to the bootstrap enclave.
"""

from __future__ import annotations

from ..policy.policies import PolicySet
from .codegen import generate_functions
from .linker import link
from .objfile import ObjectFile
from .parser import parse
from .prelude import PRELUDE_SOURCE
from .sema import analyze


class CodeGenerator:
    """Compile-and-instrument pipeline (untrusted, outside the enclave)."""

    def __init__(self, policies: PolicySet = None,
                 include_prelude: bool = True, custom=(),
                 light: bool = False):
        self.policies = policies if policies is not None \
            else PolicySet.full()
        self.include_prelude = include_prelude
        #: developer-defined policies (repro.policy.custom, §V-A API)
        self.custom = tuple(custom)
        #: annotation-light mode: elide provable guards, ship proofs
        self.light = light

    def compile(self, source: str, entry: str = "main") -> ObjectFile:
        """Compile MiniC ``source`` into an instrumented relocatable
        object whose execution starts at ``entry``."""
        if self.include_prelude:
            source = PRELUDE_SOURCE + "\n" + source
        program = parse(source)
        sema = analyze(program)
        units = generate_functions(sema)
        return link(units, sema, self.policies, entry_fn=entry,
                    custom=self.custom, light=self.light)


def compile_source(source: str, policies: PolicySet = None,
                   entry: str = "main",
                   include_prelude: bool = True,
                   custom=(), light: bool = False) -> ObjectFile:
    """One-shot convenience wrapper around :class:`CodeGenerator`."""
    return CodeGenerator(policies, include_prelude,
                         custom=custom, light=light).compile(source, entry)
