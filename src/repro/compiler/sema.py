"""MiniC semantic analysis.

Resolves identifiers (locals, params, globals, functions), assigns stack
frame offsets, checks and annotates expression types (with array/function
decay and pointer-arithmetic scaling), interns string literals into data
symbols, and collects the global/function inventory the code generator
and linker consume.

Annotations written onto AST nodes: ``ctype`` (decayed expression type),
``lvalue`` (bool), ``ptr_scale`` (pointer arithmetic multiplier),
``elem_size`` (Index element width), plus resolution fields declared in
:mod:`astnodes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import CompileError
from . import astnodes as ast
from .ctypes import (
    CHAR, INT, VOID, Array, CType, FuncType, Pointer,
    decay, is_integer,
)

#: Service-call builtins lowered by codegen to SVC instructions.
BUILTINS: Dict[str, FuncType] = {
    "__send": FuncType(INT, (Pointer(CHAR), INT)),
    "__recv": FuncType(INT, (Pointer(CHAR), INT)),
    "__report": FuncType(VOID, (INT,)),
}


@dataclass
class GlobalInfo:
    name: str
    ctype: CType
    init: bytes          # initialized prefix ('' -> all-zero bss)

    @property
    def size(self) -> int:
        return max(1, self.ctype.size)

    @property
    def is_bss(self) -> bool:
        return not self.init


@dataclass
class SemaResult:
    functions: List[ast.FuncDef] = field(default_factory=list)
    globals: List[GlobalInfo] = field(default_factory=list)
    func_types: Dict[str, FuncType] = field(default_factory=dict)


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, ast.Node] = {}

    def define(self, name: str, node: ast.Node, line: int) -> None:
        if name in self.names:
            raise CompileError(f"redefinition of {name!r}", line)
        self.names[name] = node

    def lookup(self, name: str):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class Sema:
    def __init__(self, program: ast.Program):
        self.program = program
        self.result = SemaResult()
        self.global_types: Dict[str, CType] = {}
        self.strings: Dict[bytes, str] = {}
        self._frame_offset = 0
        self._max_frame = 0
        self._current_ret: CType = INT
        self._loop_depth = 0

    # -- driver -------------------------------------------------------------

    def run(self) -> SemaResult:
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef):
                if decl.name in BUILTINS:
                    raise CompileError(
                        f"{decl.name!r} is a builtin", decl.line)
                ftype = FuncType(decl.ret,
                                 tuple(p.ctype for p in decl.params))
                known = self.result.func_types.get(decl.name)
                if known is not None and known != ftype:
                    raise CompileError(
                        f"conflicting declarations of {decl.name!r}",
                        decl.line)
                self.result.func_types[decl.name] = ftype
            elif isinstance(decl, ast.GlobalDecl):
                self._collect_global(decl)
        for decl in self.program.decls:
            if isinstance(decl, ast.FuncDef) and decl.body is not None:
                self._check_function(decl)
                self.result.functions.append(decl)
        defined = {f.name for f in self.result.functions}
        for name in self.result.func_types:
            if name not in defined:
                raise CompileError(f"function {name!r} declared but "
                                   f"never defined")
        return self.result

    # -- globals ---------------------------------------------------------------

    def _collect_global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self.global_types:
            raise CompileError(f"redefinition of global {decl.name!r}",
                               decl.line)
        ctype = decl.ctype
        init = b""
        if decl.init_string is not None:
            init = decl.init_string
        elif decl.init_values is not None:
            if isinstance(ctype, Array):
                if len(decl.init_values) > ctype.count:
                    raise CompileError(
                        f"too many initializers for {decl.name!r}",
                        decl.line)
                width = max(1, ctype.elem.size)
            else:
                if len(decl.init_values) != 1:
                    raise CompileError(
                        f"scalar {decl.name!r} needs one initializer",
                        decl.line)
                width = max(1, ctype.size)
            chunks = []
            for value in decl.init_values:
                chunks.append((value & ((1 << (8 * width)) - 1))
                              .to_bytes(width, "little"))
            init = b"".join(chunks)
        self.global_types[decl.name] = ctype
        self.result.globals.append(GlobalInfo(decl.name, ctype, init))

    def _intern_string(self, data: bytes) -> str:
        symbol = self.strings.get(data)
        if symbol is None:
            symbol = f"__str_{len(self.strings)}"
            self.strings[data] = symbol
            self.result.globals.append(
                GlobalInfo(symbol, Array(CHAR, len(data)), data))
        return symbol

    # -- functions ---------------------------------------------------------------

    def _check_function(self, func: ast.FuncDef) -> None:
        self._frame_offset = 0
        self._max_frame = 0
        self._current_ret = func.ret
        scope = _Scope()
        for index, param in enumerate(func.params):
            if not param.name:
                raise CompileError(
                    f"unnamed parameter in definition of {func.name!r}",
                    func.line)
            if isinstance(param.ctype, Array):
                param.ctype = Pointer(param.ctype.elem)
            param.slot = index
            scope.define(param.name, param, param.line)
        self._check_block(func.body, _Scope(scope))
        func.frame_slots = (self._max_frame + 7) // 8

    def _alloc_local(self, decl: ast.VarDecl) -> None:
        size = max(1, decl.ctype.size)
        size = (size + 7) & ~7
        self._frame_offset += size
        decl.slot = self._frame_offset          # byte offset below RBP
        self._max_frame = max(self._max_frame, self._frame_offset)

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        saved_offset = self._frame_offset
        for stmt in block.statements:
            self._check_stmt(stmt, scope)
        self._frame_offset = saved_offset

    def _check_stmt(self, stmt: ast.Node, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._check_stmt(decl, scope)
        elif isinstance(stmt, ast.VarDecl):
            self._alloc_local(stmt)
            scope.define(stmt.name, stmt, stmt.line)
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
                if isinstance(stmt.ctype, Array):
                    raise CompileError(
                        f"cannot initialize array {stmt.name!r} with "
                        f"an expression", stmt.line)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.other is not None:
                self._check_stmt(stmt.other, scope)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            saved_offset = self._frame_offset
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
            self._frame_offset = saved_offset
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_expr(stmt.value, scope)
            elif self._current_ret != VOID:
                raise CompileError("return without a value", stmt.line)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if not self._loop_depth:
                raise CompileError("break/continue outside a loop",
                                   stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}",
                               stmt.line)

    # -- expressions ---------------------------------------------------------------

    def _check_expr(self, node: ast.Node, scope: _Scope) -> CType:
        ctype = self._expr_type(node, scope)
        node.ctype = ctype
        return ctype

    def _expr_type(self, node: ast.Node, scope: _Scope) -> CType:
        node.lvalue = False
        if isinstance(node, ast.IntLit):
            return INT
        if isinstance(node, ast.SizeofType):
            return INT
        if isinstance(node, ast.StrLit):
            node.symbol = self._intern_string(node.data)
            return Pointer(CHAR)
        if isinstance(node, ast.Ident):
            return self._ident_type(node, scope)
        if isinstance(node, ast.Unary):
            return self._unary_type(node, scope)
        if isinstance(node, ast.Binary):
            return self._binary_type(node, scope)
        if isinstance(node, ast.Assign):
            return self._assign_type(node, scope)
        if isinstance(node, ast.IncDec):
            target = self._check_expr(node.target, scope)
            if not node.target.lvalue:
                raise CompileError("++/-- needs an lvalue", node.line)
            node.ptr_scale = (target.elem.size if isinstance(target, Pointer)
                              else 1)
            return target
        if isinstance(node, ast.Index):
            base = self._check_expr(node.base, scope)
            self._check_expr(node.index, scope)
            if not isinstance(base, Pointer):
                raise CompileError("indexing a non-pointer", node.line)
            elem = base.elem
            node.elem_size = max(1, elem.size)
            node.lvalue = not isinstance(elem, Array)
            return decay(elem)
        if isinstance(node, ast.Call):
            return self._call_type(node, scope)
        if isinstance(node, ast.Ternary):
            self._check_expr(node.cond, scope)
            then = self._check_expr(node.then, scope)
            self._check_expr(node.other, scope)
            return then
        raise CompileError(f"unhandled expression {type(node).__name__}",
                           node.line)

    def _ident_type(self, node: ast.Ident, scope: _Scope) -> CType:
        found = scope.lookup(node.name)
        if isinstance(found, ast.VarDecl):
            node.binding = "local"
            node.slot = found.slot
            node.decl_type = found.ctype
        elif isinstance(found, ast.Param):
            node.binding = "param"
            node.slot = found.slot
            node.decl_type = found.ctype
        elif node.name in self.global_types:
            node.binding = "global"
            node.symbol = node.name
            node.decl_type = self.global_types[node.name]
        elif node.name in self.result.func_types:
            node.binding = "func"
            node.symbol = node.name
            node.decl_type = self.result.func_types[node.name]
        elif node.name in BUILTINS:
            node.binding = "builtin"
            node.symbol = node.name
            node.decl_type = BUILTINS[node.name]
        else:
            raise CompileError(f"undefined identifier {node.name!r}",
                               node.line)
        declared = node.decl_type
        node.lvalue = (node.binding in ("local", "param", "global")
                       and not isinstance(declared, Array))
        return decay(declared)

    def _unary_type(self, node: ast.Unary, scope: _Scope) -> CType:
        operand = self._check_expr(node.operand, scope)
        if node.op in ("-", "~", "!"):
            if not (is_integer(operand) or isinstance(operand, Pointer)):
                raise CompileError(f"bad operand for {node.op!r}", node.line)
            return INT
        if node.op == "*":
            if not isinstance(operand, Pointer):
                raise CompileError("dereferencing a non-pointer", node.line)
            elem = operand.elem
            node.lvalue = not isinstance(elem, (Array, FuncType))
            return decay(elem)
        if node.op == "&":
            inner = node.operand
            if isinstance(inner, ast.Ident) and inner.binding in (
                    "func", "builtin"):
                return decay(inner.decl_type)
            if not inner.lvalue and not (
                    isinstance(inner, ast.Ident)
                    and isinstance(inner.decl_type, Array)):
                raise CompileError("& needs an lvalue", node.line)
            declared = getattr(inner, "decl_type", None)
            if isinstance(inner, ast.Ident) and declared is not None:
                if isinstance(declared, Array):
                    return Pointer(declared.elem)
                return Pointer(declared)
            if isinstance(inner, ast.Index):
                return Pointer(_undecay_elem(inner))
            if isinstance(inner, ast.Unary) and inner.op == "*":
                return inner.operand.ctype
            raise CompileError("cannot take this address", node.line)
        raise CompileError(f"unhandled unary {node.op!r}", node.line)

    def _binary_type(self, node: ast.Binary, scope: _Scope) -> CType:
        lhs = self._check_expr(node.lhs, scope)
        rhs = self._check_expr(node.rhs, scope)
        node.ptr_scale = 1
        if node.op in ("+", "-"):
            if isinstance(lhs, Pointer) and is_integer(rhs):
                node.ptr_scale = max(1, lhs.elem.size)
                node.scale_side = "rhs"
                return lhs
            if node.op == "+" and is_integer(lhs) and isinstance(rhs,
                                                                 Pointer):
                node.ptr_scale = max(1, rhs.elem.size)
                node.scale_side = "lhs"
                return rhs
            if node.op == "-" and isinstance(lhs, Pointer) and \
                    isinstance(rhs, Pointer):
                node.ptr_diff_size = max(1, lhs.elem.size)
                return INT
        return INT

    def _assign_type(self, node: ast.Assign, scope: _Scope) -> CType:
        target = self._check_expr(node.target, scope)
        self._check_expr(node.value, scope)
        if not node.target.lvalue:
            raise CompileError("assignment target is not an lvalue",
                               node.line)
        node.ptr_scale = 1
        if node.op in ("+=", "-=") and isinstance(target, Pointer):
            node.ptr_scale = max(1, target.elem.size)
        return target

    def _call_type(self, node: ast.Call, scope: _Scope) -> CType:
        callee = node.callee
        if isinstance(callee, ast.Ident):
            self._check_expr(callee, scope)
            if callee.binding in ("func", "builtin"):
                ftype = callee.decl_type
                node.direct_symbol = callee.symbol
                node.builtin = callee.binding == "builtin"
                self._check_args(node, ftype, scope)
                return decay(ftype.ret)
        ctype = self._check_expr(callee, scope)
        if isinstance(ctype, Pointer) and isinstance(ctype.elem, FuncType):
            ftype = ctype.elem
            node.builtin = False
            self._check_args(node, ftype, scope)
            return decay(ftype.ret)
        raise CompileError("calling a non-function", node.line)

    def _check_args(self, node: ast.Call, ftype: FuncType,
                    scope: _Scope) -> None:
        if len(node.args) != len(ftype.params):
            raise CompileError(
                f"call expects {len(ftype.params)} arguments, got "
                f"{len(node.args)}", node.line)
        for arg in node.args:
            self._check_expr(arg, scope)


def _undecay_elem(index_node: ast.Index) -> CType:
    base = index_node.base.ctype
    if isinstance(base, Pointer):
        return base.elem
    raise CompileError("cannot take this address", index_node.line)


def analyze(program: ast.Program) -> SemaResult:
    return Sema(program).run()
