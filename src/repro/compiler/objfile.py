"""The relocatable object format delivered to the bootstrap enclave.

A single self-contained binary blob (magic ``DFOB``) holding the text
and data images, a symbol table, ABS64 relocations, the indirect-branch
target list (symbol names, as §IV-D describes) and the entry symbol.
The in-enclave dynamic loader parses this format, rebases the symbols
and builds the valid-target byte map from the target list.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import ObjectFormatError

MAGIC = b"DFOB"
VERSION = 1
#: Version 2 appends the static-proof log (annotation-light binaries).
#: Proof-free objects keep serializing as version 1, byte-identically.
PROOF_VERSION = 2

SEC_TEXT = 0
SEC_DATA = 1
SEC_BSS = 2

KIND_FUNC = 0
KIND_OBJECT = 1

_SECTION_NAMES = {SEC_TEXT: "text", SEC_DATA: "data", SEC_BSS: "bss"}


@dataclass(frozen=True)
class Symbol:
    name: str
    section: int
    offset: int
    kind: int

    @property
    def section_name(self) -> str:
        return _SECTION_NAMES[self.section]


@dataclass(frozen=True)
class ObjRelocation:
    """ABS64: patch text[offset:offset+8] = address_of(symbol) + addend."""

    offset: int
    symbol: str
    addend: int = 0


def _pack_str(value: str) -> bytes:
    raw = value.encode()
    if len(raw) > 0xFFFF:
        raise ObjectFormatError("string too long")
    return struct.pack("<H", len(raw)) + raw


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        if self.pos + count > len(self.data):
            raise ObjectFormatError("truncated object file")
        out = self.data[self.pos:self.pos + count]
        self.pos += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def string(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode()
        except UnicodeDecodeError as exc:
            raise ObjectFormatError(f"malformed string field: {exc}") \
                from exc


@dataclass
class ObjectFile:
    text: bytes = b""
    data: bytes = b""
    bss_size: int = 0
    entry: str = "__start"
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    relocations: List[ObjRelocation] = field(default_factory=list)
    branch_targets: List[str] = field(default_factory=list)
    policies_label: str = "baseline"
    #: Static proof log: ``(site_off, kind, def_off)`` per elided guard
    #: (see :mod:`repro.core.proofcheck` for the kind constants).  The
    #: in-enclave verifier re-derives every entry; it never trusts them.
    proofs: List[tuple] = field(default_factory=list)

    # -- convenience -----------------------------------------------------

    def add_symbol(self, name: str, section: int, offset: int,
                   kind: int) -> None:
        if name in self.symbols:
            raise ObjectFormatError(f"duplicate symbol {name!r}")
        self.symbols[name] = Symbol(name, section, offset, kind)

    def symbol(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise ObjectFormatError(f"undefined symbol {name!r}") from None

    def measurement(self) -> bytes:
        """SHA-256 over the serialized object — the service-code hash the
        bootstrap reports to the data owner (§III-A)."""
        return hashlib.sha256(self.serialize()).digest()

    # -- serialization -----------------------------------------------------

    def serialize(self) -> bytes:
        out = bytearray()
        out += MAGIC
        out += struct.pack(
            "<H", PROOF_VERSION if self.proofs else VERSION)
        out += _pack_str(self.entry)
        out += _pack_str(self.policies_label)
        out += struct.pack("<IIQ", len(self.text), len(self.data),
                           self.bss_size)
        out += struct.pack("<III", len(self.symbols),
                           len(self.relocations), len(self.branch_targets))
        out += self.text
        out += self.data
        for name in sorted(self.symbols):
            sym = self.symbols[name]
            out += _pack_str(sym.name)
            out += struct.pack("<BQB", sym.section, sym.offset, sym.kind)
        for reloc in self.relocations:
            out += struct.pack("<Q", reloc.offset)
            out += _pack_str(reloc.symbol)
            out += struct.pack("<q", reloc.addend)
        for name in self.branch_targets:
            out += _pack_str(name)
        if self.proofs:
            out += struct.pack("<I", len(self.proofs))
            for site, kind, def_off in self.proofs:
                out += struct.pack("<QBq", site, kind, def_off)
        return bytes(out)

    @classmethod
    def parse(cls, blob: bytes) -> "ObjectFile":
        reader = _Reader(blob)
        if reader.take(4) != MAGIC:
            raise ObjectFormatError("bad magic (not a DFOB object)")
        version = reader.u16()
        if version not in (VERSION, PROOF_VERSION):
            raise ObjectFormatError(f"unsupported version {version}")
        obj = cls()
        obj.entry = reader.string()
        obj.policies_label = reader.string()
        text_len = reader.u32()
        data_len = reader.u32()
        obj.bss_size = reader.u64()
        nsyms = reader.u32()
        nrelocs = reader.u32()
        ntargets = reader.u32()
        obj.text = reader.take(text_len)
        obj.data = reader.take(data_len)
        for _ in range(nsyms):
            name = reader.string()
            section, offset, kind = struct.unpack("<BQB", reader.take(10))
            if section not in _SECTION_NAMES:
                raise ObjectFormatError(f"bad section {section}")
            obj.symbols[name] = Symbol(name, section, offset, kind)
        for _ in range(nrelocs):
            offset = reader.u64()
            symbol = reader.string()
            addend = reader.i64()
            if offset + 8 > len(obj.text):
                raise ObjectFormatError("relocation outside text")
            obj.relocations.append(ObjRelocation(offset, symbol, addend))
        for _ in range(ntargets):
            obj.branch_targets.append(reader.string())
        if version == PROOF_VERSION:
            for _ in range(reader.u32()):
                site, kind, def_off = struct.unpack("<QBq",
                                                    reader.take(17))
                if site >= len(obj.text):
                    raise ObjectFormatError("proof site outside text")
                obj.proofs.append((site, kind, def_off))
        if reader.pos != len(blob):
            raise ObjectFormatError("trailing bytes in object file")
        for name in obj.branch_targets:
            if name not in obj.symbols:
                raise ObjectFormatError(
                    f"branch target {name!r} has no symbol")
        if obj.entry not in obj.symbols:
            raise ObjectFormatError("entry symbol missing")
        return obj
