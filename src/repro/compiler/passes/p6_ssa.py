"""SSA-marker instrumentation (policy P6, HyperRace AEX detection).

Instruments every basic-block entry with the marker-inspection
annotation of :func:`repro.policy.templates.p6_guard_pattern` (§IV-C,
"Enforcing P6 with SSA inspection").  Basic-block leaders are:

* the unit's first instruction (function entry / program entry),
* the target of every *program* direct jump or conditional jump,
* the fall-through successor of every program conditional jump.

Annotation-internal jumps (to local labels and trap pads) do not create
leaders — the verifier's leader analysis makes the same exclusion after
matching annotations.  Calls do not end basic blocks (as in LLVM).
"""

from __future__ import annotations

from typing import List, Set

from ...isa.instructions import (
    Instruction, Label, LabelDef, Op, is_cond_jump,
)
from ...policy.emit import emit_pattern
from ...policy.templates import p6_guard_pattern
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class SsaMarkerPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        self.pattern = p6_guard_pattern()

    def run(self, unit: FuncCode) -> FuncCode:
        items = unit.items
        targeted = self._targeted_labels(items)
        leaders = self._leader_indices(items, targeted)
        for index in sorted(leaders, reverse=True):
            guard = emit_pattern(self.pattern, self.context.label_alloc)
            items[index:index] = self.context.mark(guard)
        unit.items = items
        return unit

    def _targeted_labels(self, items) -> Set[str]:
        targeted: Set[str] = set()
        for item in items:
            if isinstance(item, Instruction) and \
                    not self.context.is_annotation(item) and \
                    (item.op == Op.JMP or is_cond_jump(item)):
                operand = item.operands[0]
                if isinstance(operand, Label):
                    targeted.add(operand.name)
        return targeted

    def _leader_indices(self, items, targeted: Set[str]) -> Set[int]:
        def next_instr(start: int) -> int:
            pos = start
            while pos < len(items) and not isinstance(items[pos],
                                                      Instruction):
                pos += 1
            return pos if pos < len(items) else -1

        leaders: Set[int] = set()
        first = next_instr(0)
        if first >= 0:
            leaders.add(first)
        for index, item in enumerate(items):
            if isinstance(item, LabelDef) and item.name in targeted:
                pos = next_instr(index + 1)
                if pos >= 0:
                    leaders.add(pos)
            elif isinstance(item, Instruction) and \
                    is_cond_jump(item) and \
                    not self.context.is_annotation(item):
                pos = next_instr(index + 1)
                if pos >= 0:
                    leaders.add(pos)
        return leaders
