"""RSP-validity instrumentation (policy P2).

After every instruction that *explicitly* writes the stack pointer
(frame setup/teardown, argument-area pops, or anything an adversarial
producer might emit), insert the range check of
:func:`repro.policy.templates.rsp_guard_pattern`.  Implicit RSP motion
(PUSH/POP/CALL/RET) is covered by the loader's guard pages, per §IV-C.

In annotation-light mode, aligned sub-page SUB/ADD steps that sit right
after a probing instruction (the prologue ``PUSH RBP; MOV RBP, RSP`` or
a CALL) are elided with an ``rsp_step`` proof — the stack-probing
argument bounds how far such steps can drift before faulting in a guard
page.  ``MOV RSP, RBP`` restores and irregular steps keep the guard.
"""

from __future__ import annotations

from ...core.proofcheck import PROOF_RSP_STEP
from ...isa.instructions import Instruction, Op, writes_rsp_explicitly
from ...policy.emit import emit_pattern
from ...policy.templates import rsp_guard_pattern
from ...staticproof.eligibility import elidable_rsp_step
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class RspGuardPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        self.pattern = rsp_guard_pattern()

    def run(self, unit: FuncCode) -> FuncCode:
        ctx = self.context
        items = unit.items
        out = []
        for i, item in enumerate(items):
            out.append(item)
            if isinstance(item, Instruction) and \
                    writes_rsp_explicitly(item) and \
                    not ctx.is_annotation(item):
                if ctx.light and ctx.frame_ok and \
                        item.op in (Op.SUB_RI, Op.ADD_RI) and \
                        elidable_rsp_step(items, i):
                    ctx.elide(item, PROOF_RSP_STEP)
                    continue
                guard = emit_pattern(self.pattern,
                                     ctx.label_alloc)
                out.extend(ctx.mark(guard))
        unit.items = out
        return unit
