"""RSP-validity instrumentation (policy P2).

After every instruction that *explicitly* writes the stack pointer
(frame setup/teardown, argument-area pops, or anything an adversarial
producer might emit), insert the range check of
:func:`repro.policy.templates.rsp_guard_pattern`.  Implicit RSP motion
(PUSH/POP/CALL/RET) is covered by the loader's guard pages, per §IV-C.
"""

from __future__ import annotations

from ...isa.instructions import Instruction, writes_rsp_explicitly
from ...policy.templates import emit_pattern, rsp_guard_pattern
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class RspGuardPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        self.pattern = rsp_guard_pattern()

    def run(self, unit: FuncCode) -> FuncCode:
        out = []
        for item in unit.items:
            out.append(item)
            if isinstance(item, Instruction) and \
                    writes_rsp_explicitly(item) and \
                    not self.context.is_annotation(item):
                guard = emit_pattern(self.pattern,
                                     self.context.label_alloc)
                out.extend(self.context.mark(guard))
        unit.items = out
        return unit
