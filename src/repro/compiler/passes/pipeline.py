"""Instrumentation pass pipeline and shared context."""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ...isa.assembler import local_label_allocator
from ...isa.instructions import Instruction
from ...policy.policies import PolicySet
from ..codegen import FuncCode


class InstrumentationContext:
    """State shared by all passes over one linked program.

    ``annotation_ids`` holds ``id()`` of every instruction object emitted
    by an instrumentation pass; passes use it to skip annotation code when
    scanning for program anchors, and the P6 pass uses it to exclude
    annotation-internal jumps from the basic-block leader analysis.

    In annotation-light mode (``light=True``) passes may *elide* a guard
    whose obligation is statically provable, recording the site and its
    proof via :meth:`elide`; the linker resolves the recorded instruction
    objects to text offsets and attaches them to the object file as the
    static proof log.  ``frame_ok`` caches the whole-program
    frame-discipline prescan; when False, stack-dependent elisions are
    disabled (the in-enclave checker would reject them anyway).
    """

    def __init__(self, policies: PolicySet, light: bool = False,
                 frame_ok: bool = True, data_symbols=frozenset(),
                 func_symbols=frozenset()):
        self.policies = policies
        self.light = light
        self.frame_ok = frame_ok
        self.data_symbols = frozenset(data_symbols)
        self.func_symbols = frozenset(func_symbols)
        #: ``(site_instr, proof_kind, def_instr_or_None)`` per elision.
        self.elisions: List[Tuple[Instruction, int,
                                  Optional[Instruction]]] = []
        self.annotation_ids: Set[int] = set()
        self._alloc = local_label_allocator("A")

    def elide(self, site: Instruction, kind: int,
              def_item: Optional[Instruction] = None) -> None:
        self.elisions.append((site, kind, def_item))

    def label_alloc(self, tag: str = "") -> str:
        return self._alloc(tag)

    def mark(self, items: Iterable) -> List:
        """Register emitted annotation items and return them as a list."""
        items = list(items)
        for item in items:
            self.annotation_ids.add(id(item))
        return items

    def is_annotation(self, item) -> bool:
        return id(item) in self.annotation_ids


class PassPipeline:
    """Runs the enabled passes in the canonical order.

    Order matters: the shadow-stack pass must see the raw prologue (it
    reads the return address before ``PUSH RBP``); the store pass must run
    after the CFI passes so it does not guard annotation-internal stores
    (it skips marked items anyway, but ordering keeps offsets stable); the
    P6 pass runs last so every leader — including ones created by earlier
    passes' anchors — is final.
    """

    def __init__(self, policies: PolicySet, custom=(), light: bool = False,
                 frame_ok: bool = True, data_symbols=frozenset(),
                 func_symbols=frozenset()):
        self.policies = policies
        self.custom = tuple(custom)
        self.context = InstrumentationContext(
            policies, light=light, frame_ok=frame_ok,
            data_symbols=data_symbols, func_symbols=func_symbols)

    def run(self, unit: FuncCode) -> FuncCode:
        from .shadow_stack import ShadowStackPass
        from .p5_cfi import IndirectBranchPass
        from .p1_store import StoreGuardPass
        from .p2_rsp import RspGuardPass
        from .p6_ssa import SsaMarkerPass
        from .custom_guard import CustomGuardPass

        if unit.no_instrument:
            return unit
        policies = self.policies
        if policies.p5 and not unit.no_shadow:
            unit = ShadowStackPass(self.context).run(unit)
        if policies.p5:
            unit = IndirectBranchPass(self.context).run(unit)
        if policies.any_store_guard:
            unit = StoreGuardPass(self.context).run(unit)
        for policy in self.custom:
            unit = CustomGuardPass(self.context, policy).run(unit)
        if policies.p2:
            unit = RspGuardPass(self.context).run(unit)
        if policies.p6:
            unit = SsaMarkerPass(self.context).run(unit)
        return unit
