"""Store-guard instrumentation (policies P1, P3, P4).

Inserts the composite bounds/exclusion annotation of
:func:`repro.policy.templates.store_guard_pattern` before every explicit
memory-store instruction of the program — the paper's
``MachineInstr::mayStore()`` walk (§IV-C, "Enforcing P1/P3/P4").
Annotation-internal stores (shadow-stack pushes, SSA marker refreshes)
are exempt: they are part of verified annotation code.
"""

from __future__ import annotations

from ...isa.instructions import Instruction, is_store
from ...policy.templates import emit_pattern, store_guard_pattern
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class StoreGuardPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        self.pattern = store_guard_pattern(context.policies)

    def run(self, unit: FuncCode) -> FuncCode:
        out = []
        for item in unit.items:
            if isinstance(item, Instruction) and is_store(item) and \
                    not self.context.is_annotation(item):
                mem = item.operands[0]
                guard = emit_pattern(self.pattern,
                                     self.context.label_alloc,
                                     anchor_mem=mem)
                out.extend(self.context.mark(guard))
            out.append(item)
        unit.items = out
        return unit
