"""Store-guard instrumentation (policies P1, P3, P4).

Inserts the composite bounds/exclusion annotation of
:func:`repro.policy.templates.store_guard_pattern` before every explicit
memory-store instruction of the program — the paper's
``MachineInstr::mayStore()`` walk (§IV-C, "Enforcing P1/P3/P4").
Annotation-internal stores (shadow-stack pushes, SSA marker refreshes)
are exempt: they are part of verified annotation code.

In annotation-light mode the pass elides the guard at sites whose
obligation is statically provable — RBP-frame stores under a canonical
probing prologue, and stores through an unclobbered constant data/bss
address — recording a proof entry instead.  Everything else (indexed
addressing, computed bases, broken frame discipline) keeps the runtime
guard unchanged.
"""

from __future__ import annotations

from ...core.proofcheck import PROOF_CONST, PROOF_STACK
from ...isa.instructions import Instruction, Op, is_store
from ...isa.registers import RBP, RSP
from ...policy.emit import emit_pattern
from ...policy.templates import store_guard_pattern
from ...staticproof.eligibility import (
    elidable_const_store, elidable_stack_store,
)
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class StoreGuardPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        self.pattern = store_guard_pattern(context.policies)

    def run(self, unit: FuncCode) -> FuncCode:
        ctx = self.context
        items = unit.items
        prologue = self._prologue_def(items) if ctx.light else None
        guarded_ids = set()
        out = []
        for i, item in enumerate(items):
            if isinstance(item, Instruction) and is_store(item) and \
                    not ctx.is_annotation(item):
                if ctx.light and \
                        self._elide(items, i, prologue, guarded_ids):
                    out.append(item)
                    continue
                guarded_ids.add(id(item))
                mem = item.operands[0]
                guard = emit_pattern(self.pattern,
                                     ctx.label_alloc,
                                     anchor_mem=mem)
                out.extend(ctx.mark(guard))
            out.append(item)
        unit.items = out
        return unit

    def _prologue_def(self, items):
        """The unit's ``MOV RBP, RSP`` prologue instruction — the
        dominating definition every stack-store proof names."""
        for item in items:
            if isinstance(item, Instruction) and item.op == Op.MOV_RR \
                    and tuple(item.operands) == (RBP, RSP) and \
                    not self.context.is_annotation(item):
                return item
        return None

    def _elide(self, items, i, prologue, guarded_ids) -> bool:
        ctx = self.context
        item = items[i]
        if ctx.frame_ok and prologue is not None and \
                elidable_stack_store(item):
            ctx.elide(item, PROOF_STACK, prologue)
            return True
        di = elidable_const_store(
            items, i, ctx.data_symbols,
            store_guarded=lambda it: id(it) in guarded_ids)
        if di is not None:
            ctx.elide(item, PROOF_CONST, items[di])
            return True
        return False
