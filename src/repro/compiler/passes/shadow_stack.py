"""Shadow-stack instrumentation (policy P5, backward edge).

Injects annotations "after entry into and before return from every
function call" (§IV-C): the prologue pushes the just-pushed return
address onto the loader-reserved shadow stack; the epilogue pops it and
compares against the live return address immediately before RET.

The prologue is placed at the very top of the function — before
``PUSH RBP`` — so ``[RSP]`` is still the return address; the epilogue is
inserted directly before RET, after frame teardown, for the same reason.
"""

from __future__ import annotations

from ...isa.instructions import Instruction, LabelDef, Op
from ...policy.emit import emit_pattern
from ...policy.templates import (
    shadow_epilogue_pattern, shadow_prologue_pattern,
)
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class ShadowStackPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        mt = context.policies.mt_safe
        self.prologue = shadow_prologue_pattern(mt)
        self.epilogue = shadow_epilogue_pattern(mt)

    def run(self, unit: FuncCode) -> FuncCode:
        out = []
        entered = False
        for item in unit.items:
            if not entered and isinstance(item, Instruction):
                out.extend(self.context.mark(
                    emit_pattern(self.prologue, self.context.label_alloc)))
                entered = True
            if isinstance(item, Instruction) and item.op == Op.RET and \
                    not self.context.is_annotation(item):
                out.extend(self.context.mark(
                    emit_pattern(self.epilogue, self.context.label_alloc)))
            out.append(item)
        unit.items = out
        return unit
