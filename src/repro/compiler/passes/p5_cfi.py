"""Forward-edge CFI instrumentation (policy P5).

Before every indirect call/jump, insert the target check of
:func:`repro.policy.templates.indirect_branch_pattern`: the register
target must fall inside the loaded code and be flagged in the loader's
valid-target byte map (built from the object file's indirect-branch
symbol list).

In annotation-light mode, a branch whose target register provably still
holds a ``MOV reg, function`` constant — a symbol on the trusted
branch-target list — is elided with a ``cfi`` proof.  Targets loaded
from memory (function-pointer parameters, tables) are not provable and
keep the runtime check.
"""

from __future__ import annotations

from ...core.proofcheck import PROOF_CFI
from ...isa.instructions import Instruction, is_indirect_branch
from ...policy.emit import emit_pattern
from ...policy.templates import indirect_branch_pattern
from ...staticproof.eligibility import elidable_cfi_target
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class IndirectBranchPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        self.pattern = indirect_branch_pattern()

    def run(self, unit: FuncCode) -> FuncCode:
        ctx = self.context
        items = unit.items
        # This pass runs before the store pass, so any store in a
        # definition span must conservatively be assumed to grow a
        # (span-breaking) guard whenever store guards are enabled.
        store_guarded = (lambda it: True) \
            if ctx.policies.any_store_guard else None
        out = []
        for i, item in enumerate(items):
            if isinstance(item, Instruction) and is_indirect_branch(item) \
                    and not ctx.is_annotation(item):
                if ctx.light:
                    di = elidable_cfi_target(items, i, ctx.func_symbols,
                                             store_guarded=store_guarded)
                    if di is not None:
                        ctx.elide(item, PROOF_CFI, items[di])
                        out.append(item)
                        continue
                guard = emit_pattern(self.pattern,
                                     ctx.label_alloc,
                                     target_reg=item.operands[0])
                out.extend(ctx.mark(guard))
            out.append(item)
        unit.items = out
        return unit
