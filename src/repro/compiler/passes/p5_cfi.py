"""Forward-edge CFI instrumentation (policy P5).

Before every indirect call/jump, insert the target check of
:func:`repro.policy.templates.indirect_branch_pattern`: the register
target must fall inside the loaded code and be flagged in the loader's
valid-target byte map (built from the object file's indirect-branch
symbol list).
"""

from __future__ import annotations

from ...isa.instructions import Instruction, is_indirect_branch
from ...policy.templates import emit_pattern, indirect_branch_pattern
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class IndirectBranchPass:
    def __init__(self, context: InstrumentationContext):
        self.context = context
        self.pattern = indirect_branch_pattern()

    def run(self, unit: FuncCode) -> FuncCode:
        out = []
        for item in unit.items:
            if isinstance(item, Instruction) and is_indirect_branch(item) \
                    and not self.context.is_annotation(item):
                guard = emit_pattern(self.pattern,
                                     self.context.label_alloc,
                                     target_reg=item.operands[0])
                out.extend(self.context.mark(guard))
            out.append(item)
        unit.items = out
        return unit
