"""Assembly-level instrumentation passes (the paper's backend passes).

Each pass rewrites a function's assembly-item stream, inserting security
annotations from :mod:`repro.policy.templates`.  A shared
:class:`~repro.compiler.passes.pipeline.InstrumentationContext` records
which emitted instructions belong to annotations, so later passes (and
the P6 leader analysis) never confuse annotation code with program code.
"""

from .pipeline import InstrumentationContext, PassPipeline

__all__ = ["InstrumentationContext", "PassPipeline"]
