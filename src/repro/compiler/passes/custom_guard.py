"""Instrumentation pass for developer-defined policies (§V-A API)."""

from __future__ import annotations

from ...isa.instructions import Instruction
from ...policy.custom import CustomPolicy
from ...policy.emit import emit_pattern
from ..codegen import FuncCode
from .pipeline import InstrumentationContext


class CustomGuardPass:
    """Insert one custom policy's guard before each of its anchors."""

    def __init__(self, context: InstrumentationContext,
                 policy: CustomPolicy):
        self.context = context
        self.policy = policy

    def run(self, unit: FuncCode) -> FuncCode:
        out = []
        for item in unit.items:
            if isinstance(item, Instruction) and \
                    self.policy.anchor(item) and \
                    not self.context.is_annotation(item):
                guard = emit_pattern(self.policy.guard_pattern(),
                                     self.context.label_alloc,
                                     anchor_instr=item)
                out.extend(self.context.mark(guard))
            out.append(item)
        unit.items = out
        return unit
