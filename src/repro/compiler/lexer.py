"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import CompileError

KEYWORDS = {
    "int", "char", "void", "if", "else", "while", "for", "return",
    "break", "continue", "sizeof",
}

# Multi-character operators, longest first.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    kind: str        # 'int', 'ident', 'string', 'op', 'kw', 'eof'
    value: object
    line: int
    col: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> CompileError:
        return CompileError(message, self.line, self.col)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end < 0:
                    raise self._error("unterminated block comment")
                self._advance(end + 2 - self.pos)
            else:
                return

    def _char_escape(self) -> int:
        src = self.source
        ch = src[self.pos]
        if ch != "\\":
            self._advance()
            return ord(ch)
        self._advance()
        if self.pos >= len(src):
            raise self._error("unterminated escape")
        esc = src[self.pos]
        if esc == "x":
            self._advance()
            digits = ""
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                digits += src[self.pos]
                self._advance()
            if not digits:
                raise self._error("bad hex escape")
            return int(digits, 16) & 0xFF
        if esc not in _ESCAPES:
            raise self._error(f"unknown escape \\{esc}")
        self._advance()
        return _ESCAPES[esc]

    def tokens(self) -> Iterator[Token]:
        src = self.source
        while True:
            self._skip_trivia()
            line, col = self.line, self.col
            if self.pos >= len(src):
                yield Token("eof", None, line, col)
                return
            ch = src[self.pos]
            if ch.isdigit():
                start = self.pos
                if src.startswith("0x", self.pos) or \
                        src.startswith("0X", self.pos):
                    self._advance(2)
                    while self.pos < len(src) and \
                            src[self.pos] in "0123456789abcdefABCDEF":
                        self._advance()
                    yield Token("int", int(src[start:self.pos], 16),
                                line, col)
                else:
                    while self.pos < len(src) and src[self.pos].isdigit():
                        self._advance()
                    yield Token("int", int(src[start:self.pos]), line, col)
            elif ch.isalpha() or ch == "_":
                start = self.pos
                while self.pos < len(src) and \
                        (src[self.pos].isalnum() or src[self.pos] == "_"):
                    self._advance()
                word = src[start:self.pos]
                yield Token("kw" if word in KEYWORDS else "ident",
                            word, line, col)
            elif ch == "'":
                self._advance()
                if self.pos >= len(src):
                    raise self._error("unterminated char literal")
                value = self._char_escape()
                if self.pos >= len(src) or src[self.pos] != "'":
                    raise self._error("unterminated char literal")
                self._advance()
                yield Token("int", value, line, col)
            elif ch == '"':
                self._advance()
                data: List[int] = []
                while True:
                    if self.pos >= len(src):
                        raise self._error("unterminated string literal")
                    if src[self.pos] == '"':
                        self._advance()
                        break
                    data.append(self._char_escape())
                yield Token("string", bytes(data), line, col)
            else:
                for op in _OPERATORS:
                    if src.startswith(op, self.pos):
                        self._advance(len(op))
                        yield Token("op", op, line, col)
                        break
                else:
                    raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str) -> List[Token]:
    return list(Lexer(source).tokens())
