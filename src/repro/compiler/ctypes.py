"""MiniC type system.

Types: 64-bit ``int``, 8-bit ``char`` (storage type; it widens to int in
expressions), pointers, fixed-size arrays (which decay to pointers in
expressions), ``void`` and function types (whose designators decay to
function pointers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class CType:
    """Base class; concrete types are singletons or frozen dataclasses."""

    size = 8

    def __repr__(self):
        return self.show()

    def show(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__


class IntType(CType):
    size = 8

    def show(self):
        return "int"

    def __eq__(self, other):
        return isinstance(other, IntType)

    def __hash__(self):
        return hash("int")


class CharType(CType):
    size = 1

    def show(self):
        return "char"

    def __eq__(self, other):
        return isinstance(other, CharType)

    def __hash__(self):
        return hash("char")


class VoidType(CType):
    size = 0

    def show(self):
        return "void"

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")


@dataclass(frozen=True)
class Pointer(CType):
    elem: CType

    @property
    def size(self):
        return 8

    def show(self):
        return f"{self.elem.show()}*"


@dataclass(frozen=True)
class Array(CType):
    elem: CType
    count: int

    @property
    def size(self):
        return self.elem.size * self.count

    def show(self):
        return f"{self.elem.show()}[{self.count}]"


@dataclass(frozen=True)
class FuncType(CType):
    ret: CType
    params: Tuple[CType, ...]

    @property
    def size(self):
        return 8

    def show(self):
        args = ", ".join(p.show() for p in self.params)
        return f"{self.ret.show()}({args})"


INT = IntType()
CHAR = CharType()
VOID = VoidType()


def is_integer(t: CType) -> bool:
    return isinstance(t, (IntType, CharType))


def is_pointerish(t: CType) -> bool:
    return isinstance(t, (Pointer, Array, FuncType))


def decay(t: CType) -> CType:
    """Array-to-pointer and function-to-pointer decay."""
    if isinstance(t, Array):
        return Pointer(t.elem)
    if isinstance(t, FuncType):
        return Pointer(t)
    return t


def pointee_size(t: CType) -> int:
    """Element size for pointer arithmetic on decayed type ``t``."""
    if isinstance(t, Pointer):
        return max(1, t.elem.size)
    raise TypeError(f"not a pointer: {t.show()}")
