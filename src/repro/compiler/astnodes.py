"""MiniC abstract syntax tree.

Sema annotates expression nodes in place: ``node.ctype`` (the decayed
expression type) and, where relevant, resolution info (local slot,
global symbol, function reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Node:
    line: int = field(default=0, compare=False)


# -- expressions -------------------------------------------------------------

@dataclass
class IntLit(Node):
    value: int = 0


@dataclass
class StrLit(Node):
    data: bytes = b""
    symbol: str = ""          # interned data symbol (sema)


@dataclass
class Ident(Node):
    name: str = ""
    # sema resolution: 'local' | 'param' | 'global' | 'func'
    binding: str = ""
    slot: int = 0             # local/param frame index
    symbol: str = ""          # global/function symbol name


@dataclass
class Unary(Node):
    op: str = ""              # '-', '!', '~', '*', '&'
    operand: Node = None


@dataclass
class Binary(Node):
    op: str = ""
    lhs: Node = None
    rhs: Node = None


@dataclass
class Assign(Node):
    op: str = "="             # '=', '+=', ...
    target: Node = None
    value: Node = None


@dataclass
class IncDec(Node):
    op: str = "++"
    prefix: bool = True
    target: Node = None


@dataclass
class Call(Node):
    callee: Node = None
    args: List[Node] = field(default_factory=list)
    direct_symbol: str = ""   # set by sema when calling a function by name


@dataclass
class Index(Node):
    base: Node = None
    index: Node = None


@dataclass
class Ternary(Node):
    cond: Node = None
    then: Node = None
    other: Node = None


@dataclass
class SizeofType(Node):
    size: int = 0


# -- statements ---------------------------------------------------------------

@dataclass
class Block(Node):
    statements: List[Node] = field(default_factory=list)


@dataclass
class If(Node):
    cond: Node = None
    then: Node = None
    other: Optional[Node] = None


@dataclass
class While(Node):
    cond: Node = None
    body: Node = None


@dataclass
class For(Node):
    init: Optional[Node] = None
    cond: Optional[Node] = None
    step: Optional[Node] = None
    body: Node = None


@dataclass
class Return(Node):
    value: Optional[Node] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class ExprStmt(Node):
    expr: Node = None


@dataclass
class VarDecl(Node):
    name: str = ""
    ctype: object = None
    init: Optional[Node] = None
    slot: int = 0             # assigned by sema


@dataclass
class DeclGroup(Node):
    """``int i, j;`` — declarations sharing the *enclosing* scope
    (unlike a Block, which opens a new one)."""

    decls: List[Node] = field(default_factory=list)


# -- top level -----------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    ctype: object = None


@dataclass
class FuncDef(Node):
    name: str = ""
    ret: object = None
    params: List[Param] = field(default_factory=list)
    body: Block = None
    frame_slots: int = 0      # filled by sema: total 8-byte local slots


@dataclass
class GlobalDecl(Node):
    name: str = ""
    ctype: object = None
    init_values: Optional[List[int]] = None   # scalar/array initializer
    init_string: Optional[bytes] = None       # char arr[] = "..."


@dataclass
class Program(Node):
    decls: List[Node] = field(default_factory=list)
